// Package sim provides the deterministic discrete-event engine that drives
// the whole TCA/PEACH2 simulation.
//
// Time is measured in integer picoseconds. All hardware models (PCIe links,
// the PEACH2 router and DMA controller, GPUs, host memory, the InfiniBand
// baseline) schedule callbacks on a single Engine; the engine executes them
// in strict timestamp order, breaking ties by scheduling order, so every run
// is reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"

	"tca/internal/units"
)

// Time is an absolute simulated timestamp in picoseconds since the start of
// the simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d units.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) units.Duration { return units.Duration(t - earlier) }

// Elapsed returns the time as a duration since simulation start (time
// zero) — the blessed conversion from an absolute timestamp to a span,
// enforced by the unittypes analyzer in place of raw casts.
func (t Time) Elapsed() units.Duration { return units.Duration(t) }

// String formats the timestamp like a duration since time zero.
func (t Time) String() string { return units.Duration(t).String() }

// event is a scheduled callback. seq breaks timestamp ties so that events
// scheduled earlier run earlier — the property that makes runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use at time zero.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	executed  uint64
	stopped   bool
	inHandler bool
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far; useful for run statistics
// and for detecting runaway models in tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// model bug, so it panics rather than silently reordering causality.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d units.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the single earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.executed++
	e.inHandler = true
	ev.fn()
	e.inHandler = false
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the time of the last executed event.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (even if no event lands exactly there). Events after
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d of simulated time from now.
func (e *Engine) RunFor(d units.Duration) { e.RunUntil(e.now.Add(d)) }

// Stop aborts a Run/RunUntil in progress after the current event handler
// returns. Queued events are preserved.
func (e *Engine) Stop() { e.stopped = true }

// Serializer models an exclusive resource that services work in FIFO order —
// a link transmitting one packet at a time, a DMA engine issuing one TLP per
// pipeline slot. Reserve returns when the reserved slot *starts*; the caller
// schedules its completion callback at start+duration.
type Serializer struct {
	nextFree Time
}

// Reserve books the resource for dur starting no earlier than now, and
// returns the slot's start time. Negative durations panic.
func (s *Serializer) Reserve(now Time, dur units.Duration) Time {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative reservation %v", dur))
	}
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	s.nextFree = start.Add(dur)
	return start
}

// NextFree reports when the resource becomes idle again.
func (s *Serializer) NextFree() Time { return s.nextFree }

// Busy reports whether the resource is occupied at time now.
func (s *Serializer) Busy(now Time) bool { return s.nextFree > now }
