// Package sim provides the deterministic discrete-event engine that drives
// the whole TCA/PEACH2 simulation.
//
// Time is measured in integer picoseconds. All hardware models (PCIe links,
// the PEACH2 router and DMA controller, GPUs, host memory, the InfiniBand
// baseline) schedule callbacks on a single Engine; the engine executes them
// in strict timestamp order, breaking ties by scheduling order, so every run
// is reproducible bit-for-bit.
package sim

import (
	"errors"
	"fmt"
	"time"

	"tca/internal/units"
)

// Time is an absolute simulated timestamp in picoseconds since the start of
// the simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d units.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) units.Duration { return units.Duration(t - earlier) }

// Elapsed returns the time as a duration since simulation start (time
// zero) — the blessed conversion from an absolute timestamp to a span,
// enforced by the unittypes analyzer in place of raw casts.
func (t Time) Elapsed() units.Duration { return units.Duration(t) }

// String formats the timestamp like a duration since time zero.
func (t Time) String() string { return units.Duration(t).String() }

// CompID identifies a simulated component for host-time attribution. IDs
// are allocated by a profiler (internal/prof); 0 is the untagged/engine
// component. Tags are inert metadata: they never influence event ordering,
// so tagged and untagged runs produce bit-identical simulation results.
type CompID uint32

// Executor intercepts event execution when a profiler is attached via
// SetExecutor. ExecEvent must call fn exactly once, synchronously; comp is
// the component the event was scheduled under (0 = untagged). The engine's
// clock already shows the event's timestamp when ExecEvent runs.
type Executor interface {
	ExecEvent(comp CompID, fn func())
}

// Action is the allocation-free alternative to a func() callback: a
// component implements RunAction on a reusable struct (typically drawn from
// a per-component free list) and schedules it with AtAction/AfterAction.
// Scheduling an Action costs zero heap allocations on the bare engine,
// which is what keeps the TLP hot path under the allocs/event gate; a
// func() closure, by contrast, allocates its capture environment on every
// schedule. RunAction receives the engine clock at dispatch time.
type Action interface {
	RunAction(now Time)
}

// StopReason reports why a Run returned: the queue drained, Stop was
// called, or a run budget (event count or host wall-clock) was exhausted.
// Budget stops leave the pending queue intact, so a supervisor can inspect
// the stuck simulation or hand the engine back for a resumed run.
type StopReason uint8

const (
	// StopDrained: the event queue is empty — the normal end of a run.
	StopDrained StopReason = iota
	// StopRequested: Stop was called from inside a handler.
	StopRequested
	// StopMaxEvents: the SetBudget event allowance was exhausted.
	StopMaxEvents
	// StopMaxHost: the SetBudget host wall-clock allowance was exhausted.
	StopMaxHost
)

// String names the reason for logs and error messages.
func (r StopReason) String() string {
	switch r {
	case StopDrained:
		return "drained"
	case StopRequested:
		return "stopped"
	case StopMaxEvents:
		return "max-events"
	case StopMaxHost:
		return "max-host-time"
	}
	return fmt.Sprintf("StopReason(%d)", uint8(r))
}

// BudgetExceeded reports whether the reason is one of the two budget stops.
func (r StopReason) BudgetExceeded() bool { return r == StopMaxEvents || r == StopMaxHost }

// ErrBudgetExceeded is the sentinel all budget failures unwrap to, so
// callers can errors.Is a run-too-long condition without matching on the
// specific budget dimension.
var ErrBudgetExceeded = errors.New("sim: run budget exceeded")

// BudgetError is the typed failure a supervisor surfaces when an engine
// run was cut off by its budget. It satisfies errors.Is(err,
// ErrBudgetExceeded).
type BudgetError struct {
	// Reason is StopMaxEvents or StopMaxHost.
	Reason StopReason
	// Events is how many events ran under the budget before the stop.
	Events uint64
	// Host is the host wall-clock time the budgeted run consumed (zero
	// when no host budget was armed).
	Host time.Duration
}

func (e *BudgetError) Error() string {
	if e.Reason == StopMaxHost {
		return fmt.Sprintf("sim: run budget exceeded: host clock (%v elapsed, %d events)", e.Host, e.Events)
	}
	return fmt.Sprintf("sim: run budget exceeded: event count (%d events)", e.Events)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) true.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// hostBudgetCheckInterval is how many events run between host-clock reads
// when a host budget is armed. Reading the clock is ~20 ns; amortizing it
// over 1024 events keeps the budgeted hot path within the events/sec gate
// while still bounding overshoot to a few microseconds of simulation work.
const hostBudgetCheckInterval = 1024

// event is a scheduled callback. seq breaks timestamp ties so that events
// scheduled earlier run earlier — the property that makes runs deterministic.
// Exactly one of fn and act is set.
type event struct {
	at   Time
	seq  uint64
	comp CompID
	fn   func()
	act  Action
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use at time zero.
//
// The pending queue is a hand-rolled binary min-heap on a plain []event
// rather than container/heap: the stdlib interface boxes every pushed
// element into an `any`, costing one allocation per scheduled event, and
// the queue is the hottest structure in the simulator. Pop order is fully
// determined by the (at, seq) total order, so the heap's internal layout
// can never affect simulation results.
type Engine struct {
	now      Time
	seq      uint64
	queue    []event
	executed uint64
	stopped  bool
	// hiWater is the queue-depth high-water mark since the last
	// ResetQueueHighWater — a capacity-planning signal for the profiler.
	hiWater   int
	inHandler bool
	// curComp is the component tag of the event currently executing;
	// events scheduled from inside a handler with plain At/After inherit
	// it, so explicitly tagging a component's entry points attributes its
	// whole causal chain. 0 (untagged) outside handlers.
	curComp CompID
	// exec, when non-nil, wraps every event execution (profiling). The
	// disabled path costs one nil check per event and zero allocations.
	exec Executor

	// Run budget (SetBudget). budgetEvents/budgetHost of zero mean
	// unlimited; budgetStart anchors the event allowance at the executed
	// count when the budget was armed. The host clock is injected
	// (SetHostClock) because this package must never read the wall clock
	// itself — callers pass prof.HostNanos, the blessed accessor.
	budgetEvents uint64
	budgetHost   int64 // host nanoseconds
	budgetStart  uint64
	hostClock    func() int64
	hostStart    int64
	hostArmed    bool
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far; useful for run statistics
// and for detecting runaway models in tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// QueueHighWater reports the deepest the pending queue has been since the
// engine was created or the mark was last reset.
func (e *Engine) QueueHighWater() int { return e.hiWater }

// ResetQueueHighWater clears the high-water mark down to the current depth,
// so a profiler can attribute the mark to one measured phase.
func (e *Engine) ResetQueueHighWater() { e.hiWater = len(e.queue) }

// SetExecutor attaches (or, with nil, detaches) an event-execution wrapper.
// Attaching a profiler changes host-side behavior only: the event order the
// wrapper observes is exactly the order the bare engine would execute.
func (e *Engine) SetExecutor(x Executor) { e.exec = x }

// CurrentComp reports the component tag of the executing event (0 between
// events) — the tag plain At/After calls inherit.
func (e *Engine) CurrentComp() CompID { return e.curComp }

// At schedules fn to run at absolute time t, attributed to the component of
// the currently executing event (untagged at the top level). Scheduling in
// the past is a model bug, so it panics rather than silently reordering
// causality.
func (e *Engine) At(t Time, fn func()) { e.schedule(e.curComp, t, fn) }

// AtComp is At with an explicit component attribution tag — the call
// components use at their entry points so downstream events inherit it.
func (e *Engine) AtComp(comp CompID, t Time, fn func()) { e.schedule(comp, t, fn) }

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d units.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.schedule(e.curComp, e.now.Add(d), fn)
}

// AfterComp is After with an explicit component attribution tag.
func (e *Engine) AfterComp(comp CompID, d units.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.schedule(comp, e.now.Add(d), fn)
}

// AtAction schedules a to run at absolute time t under component comp. It is
// the zero-allocation counterpart of AtComp: the Action value is stored in
// the event queue directly, so a pooled action struct round-trips through
// the engine without touching the heap.
func (e *Engine) AtAction(comp CompID, t Time, a Action) { e.scheduleAction(comp, t, a) }

// AfterAction schedules a to run d after the current time under component
// comp — the zero-allocation counterpart of AfterComp. Negative d panics.
func (e *Engine) AfterAction(comp CompID, d units.Duration, a Action) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.scheduleAction(comp, e.now.Add(d), a)
}

func (e *Engine) schedule(comp CompID, t Time, fn func()) {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, comp: comp, fn: fn})
	if len(e.queue) > e.hiWater {
		e.hiWater = len(e.queue)
	}
}

func (e *Engine) scheduleAction(comp CompID, t Time, a Action) {
	if a == nil {
		panic("sim: AtAction called with nil action")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, comp: comp, act: a})
	if len(e.queue) > e.hiWater {
		e.hiWater = len(e.queue)
	}
}

// less orders the heap by (at, seq) — the total order that defines the
// simulation.
func (e *Engine) less(i, j int) bool {
	if e.queue[i].at != e.queue[j].at {
		return e.queue[i].at < e.queue[j].at
	}
	return e.queue[i].seq < e.queue[j].seq
}

func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	root := e.queue[0]
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = event{}
	e.queue = e.queue[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			break
		}
		e.queue[i], e.queue[least] = e.queue[least], e.queue[i]
		i = least
	}
	return root
}

// Step runs the single earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.executed++
	e.inHandler = true
	e.curComp = ev.comp
	switch {
	case e.exec == nil && ev.act != nil:
		ev.act.RunAction(e.now)
	case e.exec == nil:
		ev.fn()
	case ev.act != nil:
		// Profiled runs wrap the action in an adapter closure. That
		// allocation is acceptable: the allocs/event baseline is collected
		// with the executor detached, and attaching a profiler never
		// changes simulation results, only host-side cost.
		act := ev.act
		e.exec.ExecEvent(ev.comp, func() { act.RunAction(e.now) })
	default:
		e.exec.ExecEvent(ev.comp, ev.fn)
	}
	e.curComp = 0
	e.inHandler = false
	return true
}

// SetHostClock injects the monotonic host-nanosecond reader a host
// wall-clock budget measures against (callers pass prof.HostNanos). The
// engine never reads the wall clock itself: host time is a budget input
// only and can never influence event order, so budgeted and unbudgeted
// runs of the same workload stay bit-identical right up to the cutoff.
func (e *Engine) SetHostClock(clock func() int64) { e.hostClock = clock }

// SetBudget arms a run budget: Run returns StopMaxEvents after maxEvents
// further events, or StopMaxHost once maxHost of host wall-clock time has
// elapsed across budgeted runs (checked every hostBudgetCheckInterval
// events through the injected SetHostClock reader). A zero value disarms
// that dimension; SetBudget(0, 0) removes the budget entirely. A budget
// stop preserves the pending queue, so the caller can inspect it or
// resume with a fresh budget.
func (e *Engine) SetBudget(maxEvents uint64, maxHost time.Duration) {
	e.budgetEvents = maxEvents
	e.budgetHost = maxHost.Nanoseconds()
	e.budgetStart = e.executed
	e.hostArmed = false
}

// BudgetUsed reports how many events have run since the budget was armed
// (0 when SetBudget was never called).
func (e *Engine) BudgetUsed() uint64 { return e.executed - e.budgetStart }

// Run executes events until the queue drains, Stop is called, or the
// armed budget runs out. It returns the time of the last executed event
// and the typed reason the run ended. Budget checks cost two predictable
// branches per event when disarmed and allocate nothing.
func (e *Engine) Run() (Time, StopReason) {
	e.stopped = false
	if e.budgetHost > 0 && e.hostClock != nil && !e.hostArmed {
		e.hostStart = e.hostClock()
		e.hostArmed = true
	}
	for {
		if len(e.queue) == 0 {
			return e.now, StopDrained
		}
		if e.budgetEvents != 0 && e.executed-e.budgetStart >= e.budgetEvents {
			return e.now, StopMaxEvents
		}
		if e.budgetHost > 0 && e.hostClock != nil &&
			(e.executed-e.budgetStart)%hostBudgetCheckInterval == 0 &&
			e.hostClock()-e.hostStart >= e.budgetHost {
			return e.now, StopMaxHost
		}
		e.Step()
		if e.stopped {
			return e.now, StopRequested
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (even if no event lands exactly there). Events after
// the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d of simulated time from now.
func (e *Engine) RunFor(d units.Duration) { e.RunUntil(e.now.Add(d)) }

// Stop aborts a Run/RunUntil in progress after the current event handler
// returns. Queued events are preserved.
func (e *Engine) Stop() { e.stopped = true }

// Serializer models an exclusive resource that services work in FIFO order —
// a link transmitting one packet at a time, a DMA engine issuing one TLP per
// pipeline slot. Reserve returns when the reserved slot *starts*; the caller
// schedules its completion callback at start+duration.
type Serializer struct {
	nextFree Time
}

// Reserve books the resource for dur starting no earlier than now, and
// returns the slot's start time. Negative durations panic.
func (s *Serializer) Reserve(now Time, dur units.Duration) Time {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative reservation %v", dur))
	}
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	s.nextFree = start.Add(dur)
	return start
}

// NextFree reports when the resource becomes idle again.
func (s *Serializer) NextFree() Time { return s.nextFree }

// Busy reports whether the resource is occupied at time now.
func (s *Serializer) Busy(now Time) bool { return s.nextFree > now }
