package sim

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tca/internal/units"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	times := []Time{500, 100, 300, 200, 400}
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
	if e.Now() != 500 {
		t.Fatalf("final time = %v, want 500", e.Now())
	}
}

func TestTiesBreakByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: got %v", i, got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.At(10, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine()
	ran := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran[at] = true })
	}
	e.RunUntil(25)
	if !ran[10] || !ran[20] {
		t.Fatalf("events at/before deadline did not run: %v", ran)
	}
	if ran[30] || ran[40] {
		t.Fatalf("events after deadline ran early: %v", ran)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25 after RunUntil(25)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if !ran[30] || !ran[40] {
		t.Fatal("remaining events never ran")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	e.RunFor(250)
	if e.Now() != 350 {
		t.Fatalf("Now() = %v, want 350", e.Now())
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events before Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(units.Nanosecond, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != Time(99*units.Nanosecond) {
		t.Fatalf("Now() = %v, want 99ns", e.Now())
	}
}

func TestExecutedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", e.Executed())
	}
}

// Property: for any set of event times, the engine visits them in
// nondecreasing order and ends at the max.
func TestQuickTimestampMonotonicity(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var visited []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			e.At(at, func() { visited = append(visited, e.Now()) })
		}
		e.Run()
		if len(visited) != len(raw) {
			return false
		}
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializerFIFO(t *testing.T) {
	var s Serializer
	start := s.Reserve(0, 100)
	if start != 0 {
		t.Fatalf("first Reserve start = %v, want 0", start)
	}
	start = s.Reserve(0, 50)
	if start != 100 {
		t.Fatalf("second Reserve start = %v, want 100 (queued behind first)", start)
	}
	if s.NextFree() != 150 {
		t.Fatalf("NextFree = %v, want 150", s.NextFree())
	}
	// After the resource idles, a later request starts immediately.
	start = s.Reserve(1000, 10)
	if start != 1000 {
		t.Fatalf("idle Reserve start = %v, want 1000", start)
	}
}

func TestSerializerBusy(t *testing.T) {
	var s Serializer
	s.Reserve(0, 100)
	if !s.Busy(50) {
		t.Fatal("Busy(50) = false during reservation")
	}
	if s.Busy(100) {
		t.Fatal("Busy(100) = true at exact release time")
	}
}

func TestSerializerNegativePanics(t *testing.T) {
	var s Serializer
	defer func() {
		if recover() == nil {
			t.Fatal("negative reservation did not panic")
		}
	}()
	s.Reserve(0, -5)
}

// Property: serializer reservations never overlap and never start before the
// request time.
func TestQuickSerializerNoOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Serializer
		now := Time(0)
		var prevEnd Time
		for i := 0; i < int(n%40)+1; i++ {
			now = now.Add(units.Duration(rng.Intn(200)))
			dur := units.Duration(rng.Intn(300))
			start := s.Reserve(now, dur)
			if start < now {
				return false
			}
			if start < prevEnd {
				return false
			}
			prevEnd = start.Add(dur)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// recordingExecutor captures the (comp, order) pairs the engine hands an
// attached profiler.
type recordingExecutor struct {
	comps []CompID
}

func (r *recordingExecutor) ExecEvent(comp CompID, fn func()) {
	r.comps = append(r.comps, comp)
	fn()
}

func TestExecutorObservesEveryEvent(t *testing.T) {
	e := NewEngine()
	var x recordingExecutor
	e.SetExecutor(&x)
	ran := 0
	e.AtComp(7, 10, func() { ran++ })
	e.AtComp(3, 20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
	want := []CompID{7, 3, 0}
	for i, c := range x.comps {
		if c != want[i] {
			t.Fatalf("executor comps = %v, want %v", x.comps, want)
		}
	}
	e.SetExecutor(nil)
	e.At(40, func() { ran++ })
	e.Run()
	if len(x.comps) != 3 {
		t.Fatal("detached executor still observed events")
	}
}

func TestComponentTagInheritance(t *testing.T) {
	e := NewEngine()
	var x recordingExecutor
	e.SetExecutor(&x)
	// An event scheduled inside a tagged handler with plain After inherits
	// the handler's tag; an explicit AfterComp overrides it.
	e.AtComp(5, 10, func() {
		e.After(5, func() {})
		e.AfterComp(9, 10, func() {})
	})
	e.Run()
	want := []CompID{5, 5, 9}
	if len(x.comps) != len(want) {
		t.Fatalf("observed %d events, want %d", len(x.comps), len(want))
	}
	for i := range want {
		if x.comps[i] != want[i] {
			t.Fatalf("comps = %v, want %v", x.comps, want)
		}
	}
	if e.CurrentComp() != 0 {
		t.Fatalf("CurrentComp() = %d between events, want 0", e.CurrentComp())
	}
}

func TestTaggedRunMatchesUntagged(t *testing.T) {
	// Same workload scheduled with and without component tags must execute
	// in the same order: tags are inert metadata.
	run := func(tagged bool) []Time {
		e := NewEngine()
		var visited []Time
		for i, at := range []Time{300, 100, 100, 200, 50} {
			if tagged {
				e.AtComp(CompID(i+1), at, func() { visited = append(visited, e.Now()) })
			} else {
				e.At(at, func() { visited = append(visited, e.Now()) })
			}
		}
		e.Run()
		return visited
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tagged order diverged: %v vs %v", a, b)
		}
	}
}

func TestQueueHighWater(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.At(Time(i), func() {})
	}
	if hw := e.QueueHighWater(); hw != 8 {
		t.Fatalf("QueueHighWater = %d, want 8", hw)
	}
	e.Run()
	if hw := e.QueueHighWater(); hw != 8 {
		t.Fatalf("QueueHighWater after drain = %d, want 8 (mark is sticky)", hw)
	}
	e.ResetQueueHighWater()
	if hw := e.QueueHighWater(); hw != 0 {
		t.Fatalf("QueueHighWater after reset = %d, want 0", hw)
	}
	e.At(e.Now()+1, func() {})
	if hw := e.QueueHighWater(); hw != 1 {
		t.Fatalf("QueueHighWater = %d, want 1", hw)
	}
	e.Run()
}

// TestDisabledProfilerPathZeroAllocs pins the engine's hot-path allocation
// contract: with no executor attached, scheduling and running an event
// allocates nothing. This matches the zero-alloc guarantee of the disabled
// obsv paths and is what makes an unprofiled run's GC profile identical to
// the pre-profiler engine. (The old container/heap queue boxed every event
// into an `any`, costing one allocation per push — the hand-rolled heap
// exists precisely to make this test pass.)
func TestDisabledProfilerPathZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the queue's backing array so append growth doesn't count.
	for i := 0; i < 64; i++ {
		e.After(0, fn)
	}
	e.Run()
	if n := testing.AllocsPerRun(200, func() {
		e.After(0, fn)
		e.Step()
	}); n != 0 {
		t.Fatalf("disabled-profiler schedule+run allocates %.1f allocs/event, want 0", n)
	}
}

func TestHeapPopOrderMatchesSort(t *testing.T) {
	// The hand-rolled heap must pop in exactly (at, seq) order for any
	// insertion sequence: stable-sorting the schedule order by timestamp
	// predicts the execution order, duplicates included.
	f := func(raw []uint8) bool {
		e := NewEngine()
		var got []int
		for i, r := range raw {
			i := i
			e.At(Time(r), func() { got = append(got, i) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		want := make([]int, len(raw))
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return raw[want[a]] < raw[want[b]] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStopThenRerunResumesBitIdentically(t *testing.T) {
	// The same workload executed straight through and executed with a Stop
	// in the middle plus a second Run must visit identical (time, id)
	// sequences: Stop preserves the queue and the (at, seq) total order.
	workload := func(e *Engine, visit func(id int)) {
		for i, at := range []Time{40, 10, 30, 10, 20, 50, 30} {
			i, at := i, at
			e.At(at, func() {
				visit(i)
				if i%3 == 0 {
					e.After(15, func() { visit(100 + i) })
				}
			})
		}
	}
	type step struct {
		id int
		at Time
	}
	run := func(interrupt bool) []step {
		e := NewEngine()
		var got []step
		count := 0
		workload(e, func(id int) {
			got = append(got, step{id, e.Now()})
			count++
			if interrupt && count == 4 {
				e.Stop()
			}
		})
		if _, reason := e.Run(); interrupt && reason != StopRequested {
			t.Fatalf("interrupted Run reason = %v, want %v", reason, StopRequested)
		}
		if interrupt {
			if e.Pending() == 0 {
				t.Fatal("Stop drained the queue")
			}
			if _, reason := e.Run(); reason != StopDrained {
				t.Fatalf("resumed Run reason = %v, want %v", reason, StopDrained)
			}
		}
		return got
	}
	plain, resumed := run(false), run(true)
	if len(plain) != len(resumed) {
		t.Fatalf("resumed run visited %d events, plain %d", len(resumed), len(plain))
	}
	for i := range plain {
		if plain[i] != resumed[i] {
			t.Fatalf("step %d diverged after resume: %+v vs %+v", i, plain[i], resumed[i])
		}
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(700)
	if e.Now() != 700 {
		t.Fatalf("Now() = %v after RunUntil on an empty queue, want 700", e.Now())
	}
	// A later RunUntil keeps advancing; an earlier one is a no-op, never a
	// rewind.
	e.RunUntil(900)
	if e.Now() != 900 {
		t.Fatalf("Now() = %v, want 900", e.Now())
	}
	e.RunUntil(100)
	if e.Now() != 900 {
		t.Fatalf("RunUntil in the past moved the clock to %v", e.Now())
	}
}

func TestBudgetMaxEventsLeavesQueueIntact(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() { ran++ })
	}
	e.SetBudget(3, 0)
	end, reason := e.Run()
	if reason != StopMaxEvents {
		t.Fatalf("reason = %v, want %v", reason, StopMaxEvents)
	}
	if ran != 3 || e.BudgetUsed() != 3 {
		t.Fatalf("ran %d events (BudgetUsed %d), want 3", ran, e.BudgetUsed())
	}
	if end != 2 || e.Now() != 2 {
		t.Fatalf("clock = %v after 3 events, want 2", e.Now())
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d after budget stop, want 7 (queue must stay inspectable)", e.Pending())
	}
	// Re-arming the budget resumes exactly where the cutoff left off.
	e.SetBudget(0, 0)
	if _, reason := e.Run(); reason != StopDrained {
		t.Fatalf("resumed reason = %v, want %v", reason, StopDrained)
	}
	if ran != 10 {
		t.Fatalf("ran %d events in total, want 10", ran)
	}
}

func TestBudgetHostClockStops(t *testing.T) {
	e := NewEngine()
	// A self-rescheduling event makes the run unbounded; only the host
	// budget can end it. The fake clock advances one "nanosecond" per
	// read, so the deadline hits on the second budget check.
	var tick func()
	tick = func() { e.After(units.Nanosecond, tick) }
	e.At(0, tick)
	var fake int64
	e.SetHostClock(func() int64 { fake++; return fake })
	e.SetBudget(0, time.Duration(hostBudgetCheckInterval)*time.Nanosecond)
	_, reason := e.Run()
	if reason != StopMaxHost {
		t.Fatalf("reason = %v, want %v", reason, StopMaxHost)
	}
	if e.Pending() == 0 {
		t.Fatal("host-budget stop left no queue to resume")
	}
	if used := e.BudgetUsed(); used == 0 || used%hostBudgetCheckInterval != 0 {
		t.Fatalf("BudgetUsed() = %d, want a positive multiple of the %d-event check interval",
			used, hostBudgetCheckInterval)
	}
}

func TestBudgetErrorWrapsSentinel(t *testing.T) {
	err := error(&BudgetError{Reason: StopMaxEvents, Events: 42})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("BudgetError does not unwrap to ErrBudgetExceeded")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Events != 42 {
		t.Fatalf("errors.As round-trip failed: %+v", be)
	}
	host := error(&BudgetError{Reason: StopMaxHost, Host: time.Second})
	if !strings.Contains(host.Error(), "host clock") {
		t.Fatalf("host-budget message %q does not name the dimension", host.Error())
	}
}

// TestBudgetedRunZeroAllocs pins the acceptance requirement that the
// budget check adds zero allocations to Step/Run: an armed event budget
// (the daemon's default) must not disturb the allocs/event gate.
func TestBudgetedRunZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(0, fn)
	}
	e.Run()
	e.SetHostClock(func() int64 { return 0 })
	e.SetBudget(1<<62, time.Hour)
	if n := testing.AllocsPerRun(200, func() {
		e.After(0, fn)
		e.Run()
	}); n != 0 {
		t.Fatalf("budgeted schedule+run allocates %.1f allocs/event, want 0", n)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(500 * units.Nanosecond)
	if a != Time(500*units.Nanosecond) {
		t.Fatalf("Add: got %v", a)
	}
	d := a.Sub(Time(200 * units.Nanosecond))
	if d != 300*units.Nanosecond {
		t.Fatalf("Sub: got %v, want 300ns", d)
	}
	if a.String() != "500ns" {
		t.Fatalf("String: got %q, want 500ns", a.String())
	}
}
