package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tca/internal/units"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	times := []Time{500, 100, 300, 200, 400}
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
	if e.Now() != 500 {
		t.Fatalf("final time = %v, want 500", e.Now())
	}
}

func TestTiesBreakByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: got %v", i, got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.At(10, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine()
	ran := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran[at] = true })
	}
	e.RunUntil(25)
	if !ran[10] || !ran[20] {
		t.Fatalf("events at/before deadline did not run: %v", ran)
	}
	if ran[30] || ran[40] {
		t.Fatalf("events after deadline ran early: %v", ran)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25 after RunUntil(25)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if !ran[30] || !ran[40] {
		t.Fatal("remaining events never ran")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	e.RunFor(250)
	if e.Now() != 350 {
		t.Fatalf("Now() = %v, want 350", e.Now())
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events before Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(units.Nanosecond, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != Time(99*units.Nanosecond) {
		t.Fatalf("Now() = %v, want 99ns", e.Now())
	}
}

func TestExecutedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", e.Executed())
	}
}

// Property: for any set of event times, the engine visits them in
// nondecreasing order and ends at the max.
func TestQuickTimestampMonotonicity(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var visited []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			e.At(at, func() { visited = append(visited, e.Now()) })
		}
		e.Run()
		if len(visited) != len(raw) {
			return false
		}
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializerFIFO(t *testing.T) {
	var s Serializer
	start := s.Reserve(0, 100)
	if start != 0 {
		t.Fatalf("first Reserve start = %v, want 0", start)
	}
	start = s.Reserve(0, 50)
	if start != 100 {
		t.Fatalf("second Reserve start = %v, want 100 (queued behind first)", start)
	}
	if s.NextFree() != 150 {
		t.Fatalf("NextFree = %v, want 150", s.NextFree())
	}
	// After the resource idles, a later request starts immediately.
	start = s.Reserve(1000, 10)
	if start != 1000 {
		t.Fatalf("idle Reserve start = %v, want 1000", start)
	}
}

func TestSerializerBusy(t *testing.T) {
	var s Serializer
	s.Reserve(0, 100)
	if !s.Busy(50) {
		t.Fatal("Busy(50) = false during reservation")
	}
	if s.Busy(100) {
		t.Fatal("Busy(100) = true at exact release time")
	}
}

func TestSerializerNegativePanics(t *testing.T) {
	var s Serializer
	defer func() {
		if recover() == nil {
			t.Fatal("negative reservation did not panic")
		}
	}()
	s.Reserve(0, -5)
}

// Property: serializer reservations never overlap and never start before the
// request time.
func TestQuickSerializerNoOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Serializer
		now := Time(0)
		var prevEnd Time
		for i := 0; i < int(n%40)+1; i++ {
			now = now.Add(units.Duration(rng.Intn(200)))
			dur := units.Duration(rng.Intn(300))
			start := s.Reserve(now, dur)
			if start < now {
				return false
			}
			if start < prevEnd {
				return false
			}
			prevEnd = start.Add(dur)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// recordingExecutor captures the (comp, order) pairs the engine hands an
// attached profiler.
type recordingExecutor struct {
	comps []CompID
}

func (r *recordingExecutor) ExecEvent(comp CompID, fn func()) {
	r.comps = append(r.comps, comp)
	fn()
}

func TestExecutorObservesEveryEvent(t *testing.T) {
	e := NewEngine()
	var x recordingExecutor
	e.SetExecutor(&x)
	ran := 0
	e.AtComp(7, 10, func() { ran++ })
	e.AtComp(3, 20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d events, want 3", ran)
	}
	want := []CompID{7, 3, 0}
	for i, c := range x.comps {
		if c != want[i] {
			t.Fatalf("executor comps = %v, want %v", x.comps, want)
		}
	}
	e.SetExecutor(nil)
	e.At(40, func() { ran++ })
	e.Run()
	if len(x.comps) != 3 {
		t.Fatal("detached executor still observed events")
	}
}

func TestComponentTagInheritance(t *testing.T) {
	e := NewEngine()
	var x recordingExecutor
	e.SetExecutor(&x)
	// An event scheduled inside a tagged handler with plain After inherits
	// the handler's tag; an explicit AfterComp overrides it.
	e.AtComp(5, 10, func() {
		e.After(5, func() {})
		e.AfterComp(9, 10, func() {})
	})
	e.Run()
	want := []CompID{5, 5, 9}
	if len(x.comps) != len(want) {
		t.Fatalf("observed %d events, want %d", len(x.comps), len(want))
	}
	for i := range want {
		if x.comps[i] != want[i] {
			t.Fatalf("comps = %v, want %v", x.comps, want)
		}
	}
	if e.CurrentComp() != 0 {
		t.Fatalf("CurrentComp() = %d between events, want 0", e.CurrentComp())
	}
}

func TestTaggedRunMatchesUntagged(t *testing.T) {
	// Same workload scheduled with and without component tags must execute
	// in the same order: tags are inert metadata.
	run := func(tagged bool) []Time {
		e := NewEngine()
		var visited []Time
		for i, at := range []Time{300, 100, 100, 200, 50} {
			if tagged {
				e.AtComp(CompID(i+1), at, func() { visited = append(visited, e.Now()) })
			} else {
				e.At(at, func() { visited = append(visited, e.Now()) })
			}
		}
		e.Run()
		return visited
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tagged order diverged: %v vs %v", a, b)
		}
	}
}

func TestQueueHighWater(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.At(Time(i), func() {})
	}
	if hw := e.QueueHighWater(); hw != 8 {
		t.Fatalf("QueueHighWater = %d, want 8", hw)
	}
	e.Run()
	if hw := e.QueueHighWater(); hw != 8 {
		t.Fatalf("QueueHighWater after drain = %d, want 8 (mark is sticky)", hw)
	}
	e.ResetQueueHighWater()
	if hw := e.QueueHighWater(); hw != 0 {
		t.Fatalf("QueueHighWater after reset = %d, want 0", hw)
	}
	e.At(e.Now()+1, func() {})
	if hw := e.QueueHighWater(); hw != 1 {
		t.Fatalf("QueueHighWater = %d, want 1", hw)
	}
	e.Run()
}

// TestDisabledProfilerPathZeroAllocs pins the engine's hot-path allocation
// contract: with no executor attached, scheduling and running an event
// allocates nothing. This matches the zero-alloc guarantee of the disabled
// obsv paths and is what makes an unprofiled run's GC profile identical to
// the pre-profiler engine. (The old container/heap queue boxed every event
// into an `any`, costing one allocation per push — the hand-rolled heap
// exists precisely to make this test pass.)
func TestDisabledProfilerPathZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the queue's backing array so append growth doesn't count.
	for i := 0; i < 64; i++ {
		e.After(0, fn)
	}
	e.Run()
	if n := testing.AllocsPerRun(200, func() {
		e.After(0, fn)
		e.Step()
	}); n != 0 {
		t.Fatalf("disabled-profiler schedule+run allocates %.1f allocs/event, want 0", n)
	}
}

func TestHeapPopOrderMatchesSort(t *testing.T) {
	// The hand-rolled heap must pop in exactly (at, seq) order for any
	// insertion sequence: stable-sorting the schedule order by timestamp
	// predicts the execution order, duplicates included.
	f := func(raw []uint8) bool {
		e := NewEngine()
		var got []int
		for i, r := range raw {
			i := i
			e.At(Time(r), func() { got = append(got, i) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		want := make([]int, len(raw))
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return raw[want[a]] < raw[want[b]] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(500 * units.Nanosecond)
	if a != Time(500*units.Nanosecond) {
		t.Fatalf("Add: got %v", a)
	}
	d := a.Sub(Time(200 * units.Nanosecond))
	if d != 300*units.Nanosecond {
		t.Fatalf("Sub: got %v, want 300ns", d)
	}
	if a.String() != "500ns" {
		t.Fatalf("String: got %q, want 500ns", a.String())
	}
}
