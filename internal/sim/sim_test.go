package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tca/internal/units"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	times := []Time{500, 100, 300, 200, 400}
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
	if e.Now() != 500 {
		t.Fatalf("final time = %v, want 500", e.Now())
	}
}

func TestTiesBreakByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: got %v", i, got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.At(10, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine()
	ran := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran[at] = true })
	}
	e.RunUntil(25)
	if !ran[10] || !ran[20] {
		t.Fatalf("events at/before deadline did not run: %v", ran)
	}
	if ran[30] || ran[40] {
		t.Fatalf("events after deadline ran early: %v", ran)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25 after RunUntil(25)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if !ran[30] || !ran[40] {
		t.Fatal("remaining events never ran")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	e.RunFor(250)
	if e.Now() != 350 {
		t.Fatalf("Now() = %v, want 350", e.Now())
	}
}

func TestStopAbortsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events before Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(units.Nanosecond, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != Time(99*units.Nanosecond) {
		t.Fatalf("Now() = %v, want 99ns", e.Now())
	}
}

func TestExecutedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", e.Executed())
	}
}

// Property: for any set of event times, the engine visits them in
// nondecreasing order and ends at the max.
func TestQuickTimestampMonotonicity(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var visited []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			e.At(at, func() { visited = append(visited, e.Now()) })
		}
		e.Run()
		if len(visited) != len(raw) {
			return false
		}
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializerFIFO(t *testing.T) {
	var s Serializer
	start := s.Reserve(0, 100)
	if start != 0 {
		t.Fatalf("first Reserve start = %v, want 0", start)
	}
	start = s.Reserve(0, 50)
	if start != 100 {
		t.Fatalf("second Reserve start = %v, want 100 (queued behind first)", start)
	}
	if s.NextFree() != 150 {
		t.Fatalf("NextFree = %v, want 150", s.NextFree())
	}
	// After the resource idles, a later request starts immediately.
	start = s.Reserve(1000, 10)
	if start != 1000 {
		t.Fatalf("idle Reserve start = %v, want 1000", start)
	}
}

func TestSerializerBusy(t *testing.T) {
	var s Serializer
	s.Reserve(0, 100)
	if !s.Busy(50) {
		t.Fatal("Busy(50) = false during reservation")
	}
	if s.Busy(100) {
		t.Fatal("Busy(100) = true at exact release time")
	}
}

func TestSerializerNegativePanics(t *testing.T) {
	var s Serializer
	defer func() {
		if recover() == nil {
			t.Fatal("negative reservation did not panic")
		}
	}()
	s.Reserve(0, -5)
}

// Property: serializer reservations never overlap and never start before the
// request time.
func TestQuickSerializerNoOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Serializer
		now := Time(0)
		var prevEnd Time
		for i := 0; i < int(n%40)+1; i++ {
			now = now.Add(units.Duration(rng.Intn(200)))
			dur := units.Duration(rng.Intn(300))
			start := s.Reserve(now, dur)
			if start < now {
				return false
			}
			if start < prevEnd {
				return false
			}
			prevEnd = start.Add(dur)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(500 * units.Nanosecond)
	if a != Time(500*units.Nanosecond) {
		t.Fatalf("Add: got %v", a)
	}
	d := a.Sub(Time(200 * units.Nanosecond))
	if d != 300*units.Nanosecond {
		t.Fatalf("Sub: got %v, want 300ns", d)
	}
	if a.String() != "500ns" {
		t.Fatalf("String: got %q, want 500ns", a.String())
	}
}
