// Package solver implements a distributed conjugate-gradient solver on top
// of the TCA communication stack — the kind of "full-scale scientific
// application using TCA" the paper's conclusion plans (§VI), built the way
// its target applications (particle physics, astrophysics; §II) would:
// matrix-free stencil SpMV with halo exchange by TCA put+flag, and global
// dot products by the MPI-free ring allreduce of package coll.
//
// The system solved is the 1-D Poisson problem: A = tridiag(-1, 2, -1),
// symmetric positive definite, distributed in contiguous slabs across the
// sub-cluster's nodes.
package solver

import (
	"encoding/binary"
	"fmt"
	"math"

	"tca/internal/coll"
	"tca/internal/core"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// CG is a distributed conjugate-gradient instance.
type CG struct {
	comm *core.Comm
	coll *coll.Communicator
	n    int // nodes
	m    int // rows per node
	N    int // global rows

	// Per node: the five CG vectors, each m float64, plus a halo inbox
	// (two cells: left, right) and its flag, and a scalar allreduce
	// buffer of n float64.
	x, b, r, p, q []core.HostBuffer
	halo          []core.HostBuffer
	scal          []core.HostBuffer

	haloSeq uint64
}

// haloLayout: [0,8) left ghost, [8,16) right ghost, [16,24) flag counter.
const (
	haloLeft  = 0
	haloRight = 8
	haloFlag  = 16
	haloSize  = 24
)

// Stats reports a solve's outcome.
type Stats struct {
	Iterations int
	Residual   float64 // final sqrt(r·r)
	Elapsed    units.Duration
}

// New builds a CG instance for N global rows across the communicator's
// sub-cluster; N must divide evenly by the node count.
func New(comm *core.Comm, cc *coll.Communicator, N int) (*CG, error) {
	n := comm.SubCluster().Nodes()
	if N <= 0 || N%n != 0 {
		return nil, fmt.Errorf("solver: %d rows do not divide across %d nodes", N, n)
	}
	m := N / n
	if m < 2 {
		return nil, fmt.Errorf("solver: need at least 2 rows per node, got %d", m)
	}
	cg := &CG{comm: comm, coll: cc, n: n, m: m, N: N}
	alloc := func(dst *[]core.HostBuffer, size units.ByteSize) error {
		for i := 0; i < n; i++ {
			buf, err := comm.AllocHostBuffer(i, size)
			if err != nil {
				return err
			}
			*dst = append(*dst, buf)
		}
		return nil
	}
	vec := units.ByteSize(m * 8)
	for _, v := range []*[]core.HostBuffer{&cg.x, &cg.b, &cg.r, &cg.p, &cg.q} {
		if err := alloc(v, vec); err != nil {
			return nil, err
		}
	}
	if err := alloc(&cg.halo, haloSize); err != nil {
		return nil, err
	}
	if err := alloc(&cg.scal, units.ByteSize(n*8)); err != nil {
		return nil, err
	}
	return cg, nil
}

// vector access helpers (harness-side, no simulated time).

func (cg *CG) load(buf core.HostBuffer) []float64 {
	raw, err := cg.comm.ReadHost(buf, 0, units.ByteSize(cg.m*8))
	if err != nil {
		panic(err)
	}
	out := make([]float64, cg.m)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

func (cg *CG) store(buf core.HostBuffer, v []float64) {
	raw := make([]byte, len(v)*8)
	for i, f := range v {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(f))
	}
	if err := cg.comm.WriteHost(buf, 0, raw); err != nil {
		panic(err)
	}
}

// SetB sets the global right-hand side (length N).
func (cg *CG) SetB(b []float64) error {
	if len(b) != cg.N {
		return fmt.Errorf("solver: rhs length %d, want %d", len(b), cg.N)
	}
	for i := 0; i < cg.n; i++ {
		cg.store(cg.b[i], b[i*cg.m:(i+1)*cg.m])
	}
	return nil
}

// X returns the assembled global solution.
func (cg *CG) X() []float64 {
	out := make([]float64, 0, cg.N)
	for i := 0; i < cg.n; i++ {
		out = append(out, cg.load(cg.x[i])...)
	}
	return out
}

// exchangeHalo ships every node's boundary elements of src to its ring
// neighbours' ghost cells — 2n TCA puts, each followed by a PIO flag, with
// completion when every node holds both ghosts. Edge nodes' outer ghosts
// are zero (Dirichlet boundary), delivered locally.
func (cg *CG) exchangeHalo(src []core.HostBuffer, done func(now sim.Time)) {
	cg.haloSeq++
	gen := cg.haloSeq << 8
	type nodeState struct{ got int }
	states := make([]*nodeState, cg.n)
	expected := make([]int, cg.n)
	finished := 0
	for i := range states {
		states[i] = &nodeState{}
		expected[i] = 2
		if i == 0 {
			expected[i]-- // no left neighbour
		}
		if i == cg.n-1 {
			expected[i]-- // no right neighbour
		}
	}
	for i := 0; i < cg.n; i++ {
		i := i
		flagBus := cg.halo[i].Bus + pcie.Addr(haloFlag)
		cg.comm.WaitFlag(i, flagBus, func(now sim.Time) {
			states[i].got++
			if states[i].got == expected[i] {
				finished++
				if finished == cg.n {
					done(now)
				}
			}
		})
	}
	// Zero the ghosts (covers boundary nodes), then ship interior ones.
	for i := 0; i < cg.n; i++ {
		if err := cg.comm.WriteHost(cg.halo[i], 0, make([]byte, 16)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < cg.n; i++ {
		// Last element of node i -> left ghost of node i+1.
		if i+1 < cg.n {
			cg.putCell(src[i], units.ByteSize((cg.m-1)*8), i, i+1, haloLeft, gen)
		}
		// First element of node i -> right ghost of node i-1.
		if i > 0 {
			cg.putCell(src[i], 0, i, i-1, haloRight, gen)
		}
	}
}

// putCell ships one float64 from a vector buffer to a neighbour's ghost
// cell, flagging after the flush.
func (cg *CG) putCell(srcBuf core.HostBuffer, srcOff units.ByteSize, srcNode, dstNode int, ghostOff units.ByteSize, gen uint64) {
	flagGlobal, err := cg.comm.GlobalHost(cg.halo[dstNode], haloFlag)
	if err != nil {
		panic(err)
	}
	err = cg.comm.PutToHost(cg.halo[dstNode], ghostOff, srcNode, srcBuf.Bus+pcie.Addr(srcOff), 8, func(sim.Time) {
		if err := cg.comm.WriteFlag(srcNode, flagGlobal, gen|uint64(srcNode)); err != nil {
			panic(err)
		}
	})
	if err != nil {
		panic(err)
	}
}

// spmv computes q = A·p locally on every node, using the freshly exchanged
// ghosts: q[j] = 2 p[j] − p[j−1] − p[j+1].
func (cg *CG) spmv() {
	for i := 0; i < cg.n; i++ {
		p := cg.load(cg.p[i])
		ghost, err := cg.comm.ReadHost(cg.halo[i], 0, 16)
		if err != nil {
			panic(err)
		}
		left := math.Float64frombits(binary.LittleEndian.Uint64(ghost[haloLeft:]))
		right := math.Float64frombits(binary.LittleEndian.Uint64(ghost[haloRight:]))
		q := make([]float64, cg.m)
		for j := 0; j < cg.m; j++ {
			lo := left
			if j > 0 {
				lo = p[j-1]
			}
			hi := right
			if j < cg.m-1 {
				hi = p[j+1]
			}
			q[j] = 2*p[j] - lo - hi
		}
		cg.store(cg.q[i], q)
	}
}

// allreduceScalar sums one partial value per node through the coll ring
// allreduce and hands every node's identical total to done.
func (cg *CG) allreduceScalar(partials []float64, done func(total float64, now sim.Time)) {
	for i := 0; i < cg.n; i++ {
		v := make([]float64, cg.n)
		v[i] = partials[i]
		raw := make([]byte, cg.n*8)
		for j, f := range v {
			binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(f))
		}
		if err := cg.comm.WriteHost(cg.scal[i], 0, raw); err != nil {
			panic(err)
		}
	}
	err := cg.coll.Allreduce(cg.scal, cg.n, func(now sim.Time) {
		raw, err := cg.comm.ReadHost(cg.scal[0], 0, units.ByteSize(cg.n*8))
		if err != nil {
			panic(err)
		}
		total := 0.0
		for j := 0; j < cg.n; j++ {
			total += math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
		}
		done(total, now)
	})
	if err != nil {
		panic(err)
	}
}

// Solve runs CG from x = 0 until the residual norm falls below tol or
// maxIter iterations pass; done receives the outcome. The engine must be
// run by the caller (the solve is fully event-driven).
func (cg *CG) Solve(tol float64, maxIter int, done func(Stats)) {
	var start sim.Time
	// x = 0, r = b, p = r.
	for i := 0; i < cg.n; i++ {
		zero := make([]float64, cg.m)
		cg.store(cg.x[i], zero)
		b := cg.load(cg.b[i])
		cg.store(cg.r[i], b)
		cg.store(cg.p[i], b)
	}
	dotLocal := func(a, b []core.HostBuffer) []float64 {
		out := make([]float64, cg.n)
		for i := 0; i < cg.n; i++ {
			va, vb := cg.load(a[i]), cg.load(b[i])
			s := 0.0
			for j := range va {
				s += va[j] * vb[j]
			}
			out[i] = s
		}
		return out
	}

	var iterate func(iter int, rho float64, now sim.Time)
	iterate = func(iter int, rho float64, now sim.Time) {
		if math.Sqrt(rho) < tol || iter >= maxIter {
			done(Stats{Iterations: iter, Residual: math.Sqrt(rho), Elapsed: now.Sub(start)})
			return
		}
		cg.exchangeHalo(cg.p, func(now sim.Time) {
			cg.spmv()
			cg.allreduceScalar(dotLocal(cg.p, cg.q), func(pq float64, now sim.Time) {
				alpha := rho / pq
				for i := 0; i < cg.n; i++ {
					x, p, r, q := cg.load(cg.x[i]), cg.load(cg.p[i]), cg.load(cg.r[i]), cg.load(cg.q[i])
					for j := 0; j < cg.m; j++ {
						x[j] += alpha * p[j]
						r[j] -= alpha * q[j]
					}
					cg.store(cg.x[i], x)
					cg.store(cg.r[i], r)
				}
				cg.allreduceScalar(dotLocal(cg.r, cg.r), func(rhoNew float64, now sim.Time) {
					beta := rhoNew / rho
					for i := 0; i < cg.n; i++ {
						p, r := cg.load(cg.p[i]), cg.load(cg.r[i])
						for j := 0; j < cg.m; j++ {
							p[j] = r[j] + beta*p[j]
						}
						cg.store(cg.p[i], p)
					}
					iterate(iter+1, rhoNew, now)
				})
			})
		})
	}

	cg.allreduceScalar(dotLocal(cg.r, cg.r), func(rho0 float64, now sim.Time) {
		start = now
		iterate(0, rho0, now)
	})
}
