package solver

import (
	"math"
	"testing"

	"tca/internal/coll"
	"tca/internal/core"
	"tca/internal/sim"
	"tca/internal/tcanet"
)

func newCG(t *testing.T, nodes, N int) (*sim.Engine, *CG) {
	t.Helper()
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, nodes, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	comm.SetMode(core.Pipelined)
	cc, err := coll.New(comm)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := New(comm, cc, N)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cg
}

// laplace1D applies A = tridiag(-1, 2, -1) to x.
func laplace1D(x []float64) []float64 {
	n := len(x)
	y := make([]float64, n)
	for i := range x {
		y[i] = 2 * x[i]
		if i > 0 {
			y[i] -= x[i-1]
		}
		if i < n-1 {
			y[i] -= x[i+1]
		}
	}
	return y
}

func TestCGSolvesKnownSolution(t *testing.T) {
	for _, cfg := range []struct{ nodes, N int }{{2, 32}, {4, 64}, {8, 64}} {
		eng, cg := newCG(t, cfg.nodes, cfg.N)
		// Pick x*, build b = A x*, solve, compare.
		xStar := make([]float64, cfg.N)
		for i := range xStar {
			xStar[i] = math.Sin(float64(i+1) * 0.37)
		}
		if err := cg.SetB(laplace1D(xStar)); err != nil {
			t.Fatal(err)
		}
		var st Stats
		doneFired := false
		cg.Solve(1e-10, 10*cfg.N, func(s Stats) { st = s; doneFired = true })
		eng.Run()
		if !doneFired {
			t.Fatalf("nodes=%d: solve never completed", cfg.nodes)
		}
		if st.Residual > 1e-9 {
			t.Fatalf("nodes=%d: residual %g after %d iterations", cfg.nodes, st.Residual, st.Iterations)
		}
		if st.Elapsed <= 0 {
			t.Fatalf("nodes=%d: no simulated time elapsed (%v)", cfg.nodes, st.Elapsed)
		}
		got := cg.X()
		for i := range xStar {
			if math.Abs(got[i]-xStar[i]) > 1e-7 {
				t.Fatalf("nodes=%d: x[%d] = %g, want %g", cfg.nodes, i, got[i], xStar[i])
			}
		}
		// CG on an N×N SPD system converges in at most N iterations.
		if st.Iterations > cfg.N {
			t.Fatalf("nodes=%d: %d iterations exceed dimension %d", cfg.nodes, st.Iterations, cfg.N)
		}
		t.Logf("nodes=%d N=%d: %d iterations, residual %.2e, %v of simulated communication time",
			cfg.nodes, cfg.N, st.Iterations, st.Residual, st.Elapsed)
	}
}

func TestCGMaxIterStops(t *testing.T) {
	eng, cg := newCG(t, 2, 64)
	b := make([]float64, 64)
	b[0] = 1
	if err := cg.SetB(b); err != nil {
		t.Fatal(err)
	}
	var st Stats
	cg.Solve(1e-30, 3, func(s Stats) { st = s })
	eng.Run()
	if st.Iterations != 3 {
		t.Fatalf("stopped after %d iterations, want maxIter=3", st.Iterations)
	}
	if st.Residual <= 0 {
		t.Fatal("residual not reported")
	}
}

func TestCGValidation(t *testing.T) {
	eng := sim.NewEngine()
	sc, _ := tcanet.BuildRing(eng, 4, tcanet.DefaultParams)
	comm, _ := core.NewComm(sc)
	cc, _ := coll.New(comm)
	if _, err := New(comm, cc, 63); err == nil {
		t.Fatal("non-divisible N accepted")
	}
	if _, err := New(comm, cc, 4); err == nil {
		t.Fatal("one row per node accepted")
	}
	cg, err := New(comm, cc, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.SetB(make([]float64, 10)); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestCGCommunicationDominatedBySmallMessages(t *testing.T) {
	// The solver's traffic profile is exactly the paper's motivation:
	// tiny halo cells and scalar reductions. Verify PIO (flag) stores and
	// small puts dominated the wire, i.e. chips forwarded many small
	// packets rather than a few bulk streams.
	eng, cg := newCG(t, 4, 64)
	xStar := make([]float64, 64)
	for i := range xStar {
		xStar[i] = float64(i%7) - 3
	}
	if err := cg.SetB(laplace1D(xStar)); err != nil {
		t.Fatal(err)
	}
	cg.Solve(1e-10, 640, func(Stats) {})
	eng.Run()
	st := cg.comm.SubCluster().Chip(0).Stats()
	if st.DMAChains == 0 {
		t.Fatal("no DMA chains ran")
	}
	if st.DMATLPs/st.DMAChains > 4 {
		t.Fatalf("average %d TLPs per chain — expected small-message traffic", st.DMATLPs/st.DMAChains)
	}
}
