// Package stats provides the small summary-statistics helpers the benchmark
// harness uses for repeated measurements.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
	// P95, P99 and P999 are nearest-rank percentiles — the tail-latency
	// view the latency-distribution benchmarks report alongside the mean.
	// P999 is the production-tail headline (ROADMAP item 3); on samples
	// smaller than 1000 it degrades gracefully to the maximum.
	P95  float64
	P99  float64
	P999 float64
}

// Summarize computes a Summary. It panics on an empty sample — callers
// always measure at least once.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	s.P95 = percentile(sorted, 95)
	s.P99 = percentile(sorted, 99)
	s.P999 = percentile(sorted, 99.9)
	return s
}

// percentile returns the nearest-rank p-th percentile of an ascending
// sample: the smallest element with at least p% of the sample at or below
// it. For small samples this degrades gracefully to the maximum.
func percentile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g median=%.4g p95=%.4g p99=%.4g p999=%.4g sd=%.4g",
		s.N, s.Min, s.Max, s.Mean, s.Median, s.P95, s.P99, s.P999, s.StdDev)
}

// WriteTable renders the summary as an aligned two-column table — the
// long-form view the percentile-ladder reports embed.
func (s Summary) WriteTable(w io.Writer) {
	rows := []struct {
		k string
		v float64
	}{
		{"min", s.Min}, {"median", s.Median}, {"mean", s.Mean},
		{"p95", s.P95}, {"p99", s.P99}, {"p999", s.P999}, {"max", s.Max},
	}
	fmt.Fprintf(w, "  %-8s %d\n", "n", s.N)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %.4g\n", r.k, r.v)
	}
}

// RelativeError reports |got-want|/|want|.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Within reports whether got is within frac of want.
func Within(got, want, frac float64) bool {
	return RelativeError(got, want) <= frac
}
