// Package stats provides the small summary-statistics helpers the benchmark
// harness uses for repeated measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary. It panics on an empty sample — callers
// always measure at least once.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g median=%.4g sd=%.4g",
		s.N, s.Min, s.Max, s.Mean, s.Median, s.StdDev)
}

// RelativeError reports |got-want|/|want|.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Within reports whether got is within frac of want.
func Within(got, want, frac float64) bool {
	return RelativeError(got, want) <= frac
}
