package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestRelativeErrorAndWithin(t *testing.T) {
	if e := RelativeError(3.3, 3.0); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v", e)
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
	if !Within(782, 800, 0.05) {
		t.Fatal("782 should be within 5% of 800")
	}
	if Within(600, 800, 0.05) {
		t.Fatal("600 should not be within 5% of 800")
	}
}

// Property: Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Bound magnitudes so the mean's running sum cannot
			// overflow — measurements are GB/s and ns, not 1e308.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	// 1..100: nearest-rank p95 is the 95th element, p99 the 99th.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("p95=%v p99=%v, want 95/99", s.P95, s.P99)
	}
	// Small samples degrade to the max, never past it.
	s = Summarize([]float64{3, 1, 2})
	if s.P95 != 3 || s.P99 != 3 {
		t.Fatalf("small-sample p95=%v p99=%v, want 3/3", s.P95, s.P99)
	}
}

func TestSummaryString(t *testing.T) {
	got := Summarize([]float64{1, 2}).String()
	if got == "" {
		t.Fatal("empty String()")
	}
}
