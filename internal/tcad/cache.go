package tcad

import "bytes"

// cacheEntry is one deterministic-result-cache slot, keyed by the job's
// canonical cache key and guarded by Server.mu. An entry exists from the
// moment the first submission is admitted — before the result is ready —
// which is what gives Submit singleflight semantics: duplicates land on
// the in-flight owner instead of spawning a second engine run.
type cacheEntry struct {
	// jobID is the owning (first-admitted) job.
	jobID uint64
	// done flips when the owner succeeds; result/transcript are then the
	// exact bytes every duplicate submission is served.
	done   bool
	result []byte
	// transcript is the internal/check transcript of the faulty run —
	// the integrity mode's byte-comparison baseline (scenario jobs only).
	transcript []byte
	// hits counts deduplicated submissions; every VerifyEvery-th one
	// triggers a background integrity re-run.
	hits uint64
	// verifyFailed latches if an integrity re-run ever diverged.
	verifyFailed bool
}

// spawnVerify re-runs a cached scenario in the background and
// byte-compares the fresh internal/check transcript against the cached
// one. A divergence means the "deterministic" cache lied — the entry is
// poisoned, a metric fires, and the operator log gets the evidence.
func (s *Server) spawnVerify(owner *Job, want []byte) {
	spec := owner.Spec
	opt := owner.checkOptions()
	key := owner.Key
	id := owner.ID
	// Registering with wg under mu closes the race against Drain: either
	// the drain flag is already up (skip), or the Add lands before Drain's
	// Wait can observe a zero counter.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.met.verifyRuns.Inc()
		res, err := s.runner.RunScenario(spec, opt)
		fresh := []byte(nil)
		if err == nil && res != nil && res.Faulty != nil {
			fresh = res.Faulty.Transcript
		}
		if err == nil && bytes.Equal(fresh, want) {
			return
		}
		s.met.verifyFailures.Inc()
		s.mu.Lock()
		if e, ok := s.cache[key]; ok {
			e.verifyFailed = true
		}
		s.mu.Unlock()
		if err != nil {
			s.cfg.Logf("tcad: cache verify of job %d errored: %v", id, err)
		} else {
			s.cfg.Logf("tcad: cache verify of job %d diverged: cached transcript %d bytes, fresh %d bytes", id, len(want), len(fresh))
		}
	}()
}
