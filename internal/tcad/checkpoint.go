package tcad

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

const checkpointVersion = "tcad-checkpoint/1"

// checkpointFile is the on-disk drain snapshot: every job the daemon
// accepted but did not finish, in submission order, as re-submittable
// requests. Results and the cache are deliberately not persisted — a
// restarted daemon re-derives them deterministically.
type checkpointFile struct {
	Version string          `json:"version"`
	NextID  uint64          `json:"next_id"`
	Jobs    []checkpointJob `json:"jobs"`
}

type checkpointJob struct {
	ID        uint64 `json:"id"`
	Kind      string `json:"kind"`
	Spec      string `json:"spec,omitempty"`
	Sweep     string `json:"sweep,omitempty"`
	Priority  string `json:"priority"`
	Attempts  int    `json:"attempts"`
	MaxEvents uint64 `json:"max_events"`
	MaxHostMS int64  `json:"max_host_ms"`
}

// request converts a checkpointed job back into the submission form that
// buildJob validates, so restore re-applies current admission rules.
func (cj checkpointJob) request() Request {
	return Request{
		Spec:      cj.Spec,
		Sweep:     cj.Sweep,
		Priority:  cj.Priority,
		MaxEvents: cj.MaxEvents,
		MaxHostMS: cj.MaxHostMS,
	}
}

// checkpoint persists every unfinished job. Jobs still running count as
// pending only when the drain grace expired (includeRunning) — otherwise
// they are about to finish and will not need re-running.
func (s *Server) checkpoint(includeRunning bool) error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.mu.Lock()
	cp := checkpointFile{Version: checkpointVersion, NextID: s.nextID}
	for _, id := range s.order {
		j := s.jobs[id]
		pending := j.State == StateQueued || j.State == StateRetryWait ||
			(includeRunning && j.State == StateRunning)
		if !pending {
			continue
		}
		cp.Jobs = append(cp.Jobs, checkpointJob{
			ID:        j.ID,
			Kind:      j.Kind.String(),
			Spec:      j.SpecText,
			Sweep:     j.Sweep,
			Priority:  j.Priority.String(),
			Attempts:  j.Attempts,
			MaxEvents: j.MaxEvents,
			MaxHostMS: int64(j.MaxHost.Milliseconds()),
		})
	}
	s.mu.Unlock()
	sort.Slice(cp.Jobs, func(a, b int) bool { return cp.Jobs[a].ID < cp.Jobs[b].ID })
	if len(cp.Jobs) == 0 {
		// Nothing pending: make sure no stale checkpoint survives to be
		// restored twice.
		err := os.Remove(s.cfg.CheckpointPath)
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("tcad: removing empty checkpoint: %w", err)
		}
		return nil
	}
	return writeCheckpoint(s.cfg.CheckpointPath, &cp)
}

// writeCheckpoint writes atomically (tmp file + rename) so a crash
// mid-write never leaves a truncated checkpoint to choke the restart.
func writeCheckpoint(path string, cp *checkpointFile) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("tcad: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("tcad: creating checkpoint dir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("tcad: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("tcad: committing checkpoint: %w", err)
	}
	return nil
}

func readCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("tcad: decoding checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("tcad: checkpoint %s has version %q, want %q", path, cp.Version, checkpointVersion)
	}
	return &cp, nil
}
