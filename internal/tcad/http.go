package tcad

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tca/internal/check"
	"tca/internal/obsv"
)

// Handler builds the daemon's HTTP API:
//
//	GET  /healthz          liveness (200 while the process serves)
//	GET  /readyz           readiness (503 once draining)
//	POST /jobs             submit {spec|sweep, priority, budgets}
//	GET  /jobs             list all jobs in submission order
//	GET  /jobs/{id}        one job's status, failure, and result
//	GET  /jobs/{id}/trace  Perfetto trace of a succeeded scenario job
//	GET  /metrics          daemon self-metrics (?format=prom|json|table)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.lookupJob(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrBadRequest):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrQueueFull):
		// Shed with an explicit retry hint: the queue holds bounded work,
		// so a couple of seconds is an honest estimate.
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	code := http.StatusAccepted
	if resp.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// lookupJob resolves {id}; on failure it has already written the error.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (Status, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return Status{}, false
	}
	st, ok := s.JobStatus(id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return Status{}, false
	}
	return st, true
}

// handleTrace re-runs a succeeded scenario with observability retained
// and streams the Perfetto trace. The re-run is cheap relative to
// storing every trace, deterministic by construction, and supervised
// like any job body.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	j := s.jobs[st.ID]
	spec, kind, state := j.Spec, j.Kind, j.State
	opt := j.checkOptions()
	s.mu.Unlock()
	if kind != KindScenario {
		http.Error(w, "traces exist for scenario jobs only", http.StatusBadRequest)
		return
	}
	if state != StateSucceeded {
		http.Error(w, "job has no result to trace (state "+string(state)+")", http.StatusConflict)
		return
	}
	var buf bytes.Buffer
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("trace run panicked: %v", r)
			}
		}()
		res, err := s.runner.TraceScenario(spec, opt)
		if err != nil {
			return err
		}
		if res.Obs == nil {
			return errors.New("trace run kept no observability")
		}
		return writePerfetto(&buf, res)
	}()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=\"tcad-job-%d-trace.json\"", st.ID))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Registry.Snapshot(0)
	switch r.URL.Query().Get("format") {
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		snap.WritePrometheus(w)
	case "table":
		w.Header().Set("Content-Type", "text/plain")
		snap.WriteTable(w)
	default:
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	}
}

// writePerfetto renders a KeepObs run as a Chrome trace_event file.
func writePerfetto(w *bytes.Buffer, res *check.Result) error {
	return obsv.WritePerfetto(w, res.Obs.Rec.Events(), res.Obs.Sam.Timeline())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
