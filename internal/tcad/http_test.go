package tcad

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestDaemon(t *testing.T) (*Server, *httptest.Server, *fakeRunner) {
	t.Helper()
	s, fake := newTestServer(t, Config{Workers: 2, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, fake
}

func httpJSON[T any](t *testing.T, method, url, body string, wantCode int) T {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d", method, url, resp.StatusCode, wantCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding body: %v", method, url, err)
	}
	return out
}

func TestHTTPHealthAndReady(t *testing.T) {
	s, ts, _ := newTestDaemon(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz while draining: %d, want 503", resp.StatusCode)
	}
}

func TestHTTPSubmitLifecycle(t *testing.T) {
	s, ts, _ := newTestDaemon(t)
	text := spec(t, 51)
	body, _ := json.Marshal(Request{Spec: text})

	sub := httpJSON[SubmitResponse](t, "POST", ts.URL+"/jobs", string(body), http.StatusAccepted)
	waitState(t, s, sub.ID, StateSucceeded)

	// Duplicate returns 200 + cached:true.
	dup := httpJSON[SubmitResponse](t, "POST", ts.URL+"/jobs", string(body), http.StatusOK)
	if dup.ID != sub.ID || !dup.Cached {
		t.Fatalf("dup = %+v, want id=%d cached=true", dup, sub.ID)
	}

	st := httpJSON[Status](t, "GET", ts.URL+"/jobs/"+itoa(sub.ID), "", http.StatusOK)
	if st.State != string(StateSucceeded) || len(st.Result) == 0 {
		t.Fatalf("status = %+v", st)
	}
	var res ScenarioResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Version != scenarioResultVersion || res.Spec != text {
		t.Fatalf("payload = %+v", res)
	}

	list := httpJSON[[]Status](t, "GET", ts.URL+"/jobs", "", http.StatusOK)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts, _ := newTestDaemon(t)
	for _, c := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/jobs", "{not json", http.StatusBadRequest},
		{"POST", "/jobs", `{"spec":"bogus"}`, http.StatusBadRequest},
		{"POST", "/jobs", `{"unknown_field":1}`, http.StatusBadRequest},
		{"GET", "/jobs/999", "", http.StatusNotFound},
		{"GET", "/jobs/abc", "", http.StatusBadRequest},
		{"GET", "/jobs/999/trace", "", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("%s %s: %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestHTTPShedSetsRetryAfter(t *testing.T) {
	s, fake := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	fake.delay = 50 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	sawShed := false
	for i := 0; i < 10 && !sawShed; i++ {
		body, _ := json.Marshal(Request{Spec: spec(t, 300+int64(i))})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After")
			}
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatalf("never shed across 10 rapid submissions with queue cap 1")
	}
}

func TestHTTPTraceDownload(t *testing.T) {
	s, ts, _ := newTestDaemon(t)
	// The fake runner's TraceScenario delegates to the real simulator, so
	// this exercises the full KeepObs → Perfetto path.
	body, _ := json.Marshal(Request{Spec: spec(t, 61)})
	sub := httpJSON[SubmitResponse](t, "POST", ts.URL+"/jobs", string(body), http.StatusAccepted)
	waitState(t, s, sub.ID, StateSucceeded)

	resp, err := http.Get(ts.URL + "/jobs/" + itoa(sub.ID) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "trace.json") {
		t.Fatalf("Content-Disposition = %q", cd)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatalf("trace has no events")
	}
}

func TestHTTPMetrics(t *testing.T) {
	s, ts, _ := newTestDaemon(t)
	body, _ := json.Marshal(Request{Spec: spec(t, 71)})
	sub := httpJSON[SubmitResponse](t, "POST", ts.URL+"/jobs", string(body), http.StatusAccepted)
	waitState(t, s, sub.ID, StateSucceeded)

	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	found := map[string]uint64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
	}
	if found["tcad_jobs_submitted"] != 1 || found["tcad_jobs_succeeded"] != 1 {
		t.Fatalf("metrics = %v", found)
	}

	prom, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	text, err := io.ReadAll(prom.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "tcad_jobs_succeeded") {
		t.Fatalf("prometheus exposition missing tcad counters:\n%s", text)
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }
