package tcad

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"tca/internal/bench"
	"tca/internal/scenariogen"
	"tca/internal/tcanet"
)

// Priority selects the admission lane. Interactive submissions are
// dispatched ahead of sweep batches, so a human poking at one spec is
// never stuck behind a thousand-point parameter grid.
type Priority uint8

const (
	PriorityInteractive Priority = iota
	PrioritySweep
	laneCount
)

// String names the lane ("interactive", "sweep").
func (p Priority) String() string {
	if p == PrioritySweep {
		return "sweep"
	}
	return "interactive"
}

// ParsePriority reads the wire form; "" defaults to interactive.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return PriorityInteractive, nil
	case "sweep":
		return PrioritySweep, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want interactive or sweep)", s)
}

// JobKind separates scenario simulations from parameter sweeps.
type JobKind uint8

const (
	KindScenario JobKind = iota
	KindSweep
)

// String names the kind for the API.
func (k JobKind) String() string {
	if k == KindSweep {
		return "sweep"
	}
	return "scenario"
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateRetryWait   State = "retry-wait"
	StateSucceeded   State = "succeeded"
	StateFailed      State = "failed"
	StateQuarantined State = "quarantined"
)

// FailureClass drives the retry policy: transient failures and panics
// retry with backoff (panics are quarantined as poison after MaxRetries);
// budget and internal failures are terminal on the first occurrence.
type FailureClass string

const (
	FailPanic     FailureClass = "panic"
	FailBudget    FailureClass = "budget"
	FailTransient FailureClass = "transient"
	FailInternal  FailureClass = "internal"
)

// Failure is the structured record of why a job stopped making progress.
type Failure struct {
	Class   FailureClass `json:"class"`
	Message string       `json:"message"`
	// Stack is the goroutine stack captured at the recover() site for
	// panicking jobs.
	Stack string `json:"stack,omitempty"`
	// Reproducer is the auto-shrunk canonical spec that still triggers
	// the panic — committable as-is for a regression test.
	Reproducer string `json:"reproducer,omitempty"`
	// Attempts is how many runs the job got before this verdict.
	Attempts int `json:"attempts"`
}

// Request is the POST /jobs body.
type Request struct {
	// Spec is a scenario in the scenariogen grammar. Exactly one of
	// Spec and Sweep must be set.
	Spec string `json:"spec,omitempty"`
	// Sweep names a bench parameter sweep ("cable", "credits", ...).
	Sweep string `json:"sweep,omitempty"`
	// Priority is "interactive" (default) or "sweep".
	Priority string `json:"priority,omitempty"`
	// MaxEvents / MaxHostMS override the server's default engine-run
	// budget for this job (0 = server default).
	MaxEvents uint64 `json:"max_events,omitempty"`
	MaxHostMS int64  `json:"max_host_ms,omitempty"`
}

// SubmitResponse acknowledges a submission. Cached is true when the
// submission deduplicated onto an already-completed result — the served
// payload is byte-identical to the first run's.
type SubmitResponse struct {
	ID     uint64 `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
}

// Job is one admitted unit of work. Identity fields (everything through
// Key) are immutable after admission; lifecycle fields are guarded by
// Server.mu.
type Job struct {
	ID       uint64
	Kind     JobKind
	Priority Priority
	// Spec/SpecText are the parsed and canonical forms of a scenario
	// job; Sweep names a sweep job.
	Spec     scenariogen.Spec
	SpecText string
	Sweep    string
	// MaxEvents/MaxHost are the per-engine-run budget.
	MaxEvents uint64
	MaxHost   time.Duration
	// Key is the deterministic cache key.
	Key string

	State    State
	Attempts int
	Failure  *Failure
	// Result is the marshaled result payload; the cache serves these
	// exact bytes for every duplicate submission.
	Result []byte
	// Host-clock stamps (prof.HostNanos) for latency accounting.
	SubmittedNS, StartedNS, DoneNS int64
}

// Status is the API projection of a Job.
type Status struct {
	ID       uint64          `json:"id"`
	Kind     string          `json:"kind"`
	State    string          `json:"state"`
	Priority string          `json:"priority"`
	Attempts int             `json:"attempts"`
	Spec     string          `json:"spec,omitempty"`
	Sweep    string          `json:"sweep,omitempty"`
	Key      string          `json:"key"`
	Failure  *Failure        `json:"failure,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	// QueueNS / RunNS are host-clock durations (admission→start and
	// start→done) for completed work.
	QueueNS int64 `json:"queue_ns,omitempty"`
	RunNS   int64 `json:"run_ns,omitempty"`
}

// status snapshots the job; the caller holds Server.mu.
func (j *Job) status() Status {
	st := Status{
		ID:       j.ID,
		Kind:     j.Kind.String(),
		State:    string(j.State),
		Priority: j.Priority.String(),
		Attempts: j.Attempts,
		Spec:     j.SpecText,
		Sweep:    j.Sweep,
		Key:      j.Key,
		Failure:  j.Failure,
		Result:   json.RawMessage(j.Result),
	}
	if j.StartedNS > 0 {
		st.QueueNS = j.StartedNS - j.SubmittedNS
	}
	if j.DoneNS > 0 && j.StartedNS > 0 {
		st.RunNS = j.DoneNS - j.StartedNS
	}
	return st
}

// ScenarioResult is the result payload of a scenario job: the full
// differential-replay verdict plus the deterministic transcript, under a
// versioned schema so cached bytes stay comparable across daemon
// restarts.
type ScenarioResult struct {
	Version        string   `json:"version"` // "tcad-result/1"
	Key            string   `json:"key"`
	Spec           string   `json:"spec"`
	DeterminismOK  bool     `json:"determinism_ok"`
	MemoryChecked  bool     `json:"memory_checked"`
	MemoryOK       bool     `json:"memory_ok"`
	CheckFailures  []string `json:"check_failures,omitempty"`
	FullyRecovered bool     `json:"fully_recovered"`
	OpsDone        int      `json:"ops_done"`
	OpsWaited      int      `json:"ops_waited"`
	EndPS          int64    `json:"end_ps"`
	Transcript     string   `json:"transcript"`
}

// SweepResult is the result payload of a sweep job.
type SweepResult struct {
	Version string       `json:"version"` // "tcad-sweep-result/1"
	Key     string       `json:"key"`
	Name    string       `json:"name"`
	Table   *bench.Table `json:"table"`
}

const (
	scenarioResultVersion = "tcad-result/1"
	sweepResultVersion    = "tcad-sweep-result/1"
)

// defaultParamsFP fingerprints the calibrated simulation parameters the
// daemon runs with, so a cache key can never alias results computed under
// different constants. %+v over the flat Params struct is deterministic.
var defaultParamsFP = func() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%+v", tcanet.DefaultParams)))
	return hex.EncodeToString(h[:8])
}()

// scenarioKey is the deterministic result-cache key of a scenario job:
// the canonical spec form already carries the seed, the ops, and the
// fault schedule, and the params fingerprint pins the remaining inputs.
func scenarioKey(canonical string) string {
	h := sha256.Sum256([]byte(scenarioResultVersion + "\x00scenario\x00" + defaultParamsFP + "\x00" + canonical))
	return hex.EncodeToString(h[:16])
}

// sweepKey is the cache key of a parameter sweep.
func sweepKey(name string) string {
	h := sha256.Sum256([]byte(sweepResultVersion + "\x00sweep\x00" + defaultParamsFP + "\x00" + name))
	return hex.EncodeToString(h[:16])
}

// knownSweep reports whether bench registers the named sweep.
func knownSweep(name string) bool {
	_, ok := bench.Sweeps()[name]
	return ok
}
