package tcad

import (
	"tca/internal/obsv"
	"tca/internal/units"
)

// jobLatencyBounds spans the daemon's host-side job latencies: a cached
// sweep renders in microseconds, a budgeted soak scenario can take tens
// of seconds.
var jobLatencyBounds = []units.Duration{
	1 * units.Millisecond,
	5 * units.Millisecond,
	25 * units.Millisecond,
	100 * units.Millisecond,
	500 * units.Millisecond,
	2 * units.Second,
	10 * units.Second,
	60 * units.Second,
}

// metrics is the daemon's self-observation surface, registered on the
// Config.Registry so /metrics serves it through the standard obsv
// exporters alongside any simulation metrics.
type metrics struct {
	submitted   *obsv.Counter
	started     *obsv.Counter
	succeeded   *obsv.Counter
	failed      *obsv.Counter
	retried     *obsv.Counter
	quarantined *obsv.Counter

	shedFull     *obsv.Counter
	shedDraining *obsv.Counter

	cacheHits      *obsv.Counter
	cacheMisses    *obsv.Counter
	verifyRuns     *obsv.Counter
	verifyFailures *obsv.Counter

	queueDepth [laneCount]*obsv.Gauge
	inflight   *obsv.Gauge

	jobLatency *obsv.Histogram
}

func newMetrics(reg *obsv.Registry) *metrics {
	const comp = "tcad"
	m := &metrics{
		submitted:   reg.Counter("tcad_jobs_submitted", comp),
		started:     reg.Counter("tcad_jobs_started", comp),
		succeeded:   reg.Counter("tcad_jobs_succeeded", comp),
		failed:      reg.Counter("tcad_jobs_failed", comp),
		retried:     reg.Counter("tcad_jobs_retried", comp),
		quarantined: reg.Counter("tcad_jobs_quarantined", comp),

		shedFull:     reg.Counter("tcad_jobs_shed", comp, obsv.Label{Key: "reason", Value: "queue-full"}),
		shedDraining: reg.Counter("tcad_jobs_shed", comp, obsv.Label{Key: "reason", Value: "draining"}),

		cacheHits:      reg.Counter("tcad_cache_hits", comp),
		cacheMisses:    reg.Counter("tcad_cache_misses", comp),
		verifyRuns:     reg.Counter("tcad_cache_verify_runs", comp),
		verifyFailures: reg.Counter("tcad_cache_verify_failures", comp),

		inflight:   reg.Gauge("tcad_jobs_inflight", comp),
		jobLatency: reg.Histogram("tcad_job_latency", comp, jobLatencyBounds),
	}
	for pri := Priority(0); pri < laneCount; pri++ {
		m.queueDepth[pri] = reg.Gauge("tcad_queue_depth", comp, obsv.Label{Key: "lane", Value: pri.String()})
	}
	return m
}

// hostDur converts a host-clock nanosecond delta into the obsv duration
// unit (picoseconds) for histogram observation.
func hostDur(ns int64) units.Duration {
	return units.Duration(ns) * units.Nanosecond
}
