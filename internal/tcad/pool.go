package tcad

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"tca/internal/check"
	"tca/internal/prof"
	"tca/internal/scenariogen"
	"tca/internal/sim"
)

// checkOptions derives the internal/check run options from the job's
// admitted budget.
func (j *Job) checkOptions() check.Options {
	return check.Options{MaxEvents: j.MaxEvents, MaxHost: j.MaxHost}
}

// worker is the dataplane loop: pop, run supervised, classify, repeat.
// One goroutine per Config.Workers; each drives at most one sim.Engine at
// a time, so engine code stays single-threaded.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one attempt of a job and applies the retry policy.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	j.State = StateRunning
	j.Attempts++
	attempt := j.Attempts
	if j.StartedNS == 0 {
		j.StartedNS = prof.HostNanos()
	}
	s.mu.Unlock()
	s.met.started.Inc()
	s.met.inflight.Add(1)

	result, transcript, failure := s.executeSupervised(j)

	s.met.inflight.Add(-1)
	now := prof.HostNanos()

	if failure == nil {
		s.mu.Lock()
		j.State = StateSucceeded
		j.Result = result
		j.DoneNS = now
		if e, ok := s.cache[j.Key]; ok {
			e.done = true
			e.result = result
			e.transcript = transcript
		}
		s.mu.Unlock()
		s.met.succeeded.Inc()
		s.met.jobLatency.Observe(hostDur(now - j.StartedNS))
		return
	}

	failure.Attempts = attempt
	retryable := failure.Class == FailPanic || failure.Class == FailTransient
	if retryable && attempt <= s.cfg.MaxRetries {
		s.met.retried.Inc()
		s.mu.Lock()
		j.State = StateRetryWait
		j.Failure = failure
		s.mu.Unlock()
		s.spawnRetry(j, attempt)
		return
	}

	// Terminal. A panicking job is quarantined as poison; its cache slot
	// is released either way so a corrected resubmission is not stuck
	// behind a failed key.
	terminal := StateFailed
	if failure.Class == FailPanic {
		terminal = StateQuarantined
		if j.Kind == KindScenario && !s.cfg.DisableShrink {
			failure.Reproducer = s.shrinkReproducer(j)
		}
	}
	s.mu.Lock()
	j.State = terminal
	j.Failure = failure
	j.DoneNS = now
	if e, ok := s.cache[j.Key]; ok && e.jobID == j.ID {
		delete(s.cache, j.Key)
	}
	s.mu.Unlock()
	if terminal == StateQuarantined {
		s.met.quarantined.Inc()
		s.cfg.Logf("tcad: job %d quarantined after %d attempts: %s", j.ID, attempt, failure.Message)
	} else {
		s.met.failed.Inc()
	}
	s.met.jobLatency.Observe(hostDur(now - j.StartedNS))
}

// spawnRetry schedules the next attempt after an exponential backoff,
// aborting (job left in retry-wait, checkpointable) if a drain begins.
// Caller must not hold s.mu.
func (s *Server) spawnRetry(j *Job, attempt int) {
	backoff := s.cfg.RetryBackoff << (attempt - 1)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		t := time.NewTimer(backoff)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.drainCh:
			return
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		j.State = StateQueued
		s.mu.Unlock()
		s.q.pushUnbounded(j)
	}()
}

// executeSupervised runs one attempt under recover() and returns the
// marshaled result payload, the check transcript (scenario jobs), and a
// structured failure classification. A panic anywhere inside the
// simulator becomes a FailPanic failure with the stack — never a daemon
// crash.
func (s *Server) executeSupervised(j *Job) (result, transcript []byte, failure *Failure) {
	defer func() {
		if r := recover(); r != nil {
			result, transcript = nil, nil
			failure = &Failure{
				Class:   FailPanic,
				Message: fmt.Sprintf("panic: %v", r),
				Stack:   string(debug.Stack()),
			}
		}
	}()
	switch j.Kind {
	case KindScenario:
		return s.runScenarioJob(j)
	default:
		return s.runSweepJob(j)
	}
}

func (s *Server) runScenarioJob(j *Job) ([]byte, []byte, *Failure) {
	res, err := s.runner.RunScenario(j.Spec, j.checkOptions())
	if err != nil {
		return nil, nil, classifyError(err)
	}
	payload := ScenarioResult{
		Version:       scenarioResultVersion,
		Key:           j.Key,
		Spec:          j.SpecText,
		DeterminismOK: res.DeterminismOK,
		MemoryChecked: res.MemoryChecked,
		MemoryOK:      res.MemoryOK,
		CheckFailures: res.Failures,
	}
	if res.Faulty != nil {
		payload.FullyRecovered = res.Faulty.FullyRecovered
		payload.OpsDone = res.Faulty.OpsDone
		payload.OpsWaited = res.Faulty.OpsWaited
		payload.EndPS = int64(res.Faulty.End)
		payload.Transcript = string(res.Faulty.Transcript)
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, nil, &Failure{Class: FailInternal, Message: "encoding result: " + err.Error()}
	}
	var transcript []byte
	if res.Faulty != nil {
		transcript = res.Faulty.Transcript
	}
	return data, transcript, nil
}

func (s *Server) runSweepJob(j *Job) ([]byte, []byte, *Failure) {
	table, err := s.runner.RunSweep(j.Sweep)
	if err != nil {
		return nil, nil, classifyError(err)
	}
	data, err := json.Marshal(SweepResult{
		Version: sweepResultVersion,
		Key:     j.Key,
		Name:    j.Sweep,
		Table:   table,
	})
	if err != nil {
		return nil, nil, &Failure{Class: FailInternal, Message: "encoding result: " + err.Error()}
	}
	return data, nil, nil
}

// classifyError maps a returned (not panicked) error onto a failure
// class: budget exhaustion is terminal and typed, transient errors
// retry, everything else is internal.
func classifyError(err error) *Failure {
	var be *sim.BudgetError
	if errors.As(err, &be) {
		return &Failure{
			Class: FailBudget,
			Message: fmt.Sprintf("%v (reason %s, %d events, %v host)",
				err, be.Reason, be.Events, be.Host.Round(time.Millisecond)),
		}
	}
	var te *TransientError
	if errors.As(err, &te) {
		return &Failure{Class: FailTransient, Message: err.Error()}
	}
	return &Failure{Class: FailInternal, Message: err.Error()}
}

// shrinkReproducer minimizes a panicking spec with scenariogen.Shrink.
// The predicate re-runs candidates under the same budget and full panic
// supervision — a candidate only counts as failing if it panics too, so
// the shrunk spec reproduces the original crash class.
func (s *Server) shrinkReproducer(j *Job) string {
	panics := func(c scenariogen.Spec) (failed bool) {
		defer func() {
			if recover() != nil {
				failed = true
			}
		}()
		_, err := s.runner.RunScenario(c, j.checkOptions())
		_ = err
		return false
	}
	small := scenariogen.Shrink(j.Spec, panics)
	return scenariogen.Format(small)
}
