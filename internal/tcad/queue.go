package tcad

import "sync"

// queue is the bounded two-lane admission queue. Interactive jobs always
// dispatch before sweep jobs; within a lane, FIFO. push sheds when the
// lane is at capacity; pushUnbounded bypasses the cap for retries and
// checkpoint restores (those jobs were already admitted once — shedding
// them would lose accepted work).
//
// Lock order: Server.mu may be held while taking q.mu (admission pushes
// under Server.mu); the reverse never happens — pop releases q.mu before
// the worker touches the job table.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [laneCount][]*Job
	cap    int
	closed bool
	met    *metrics
}

func newQueue(capacity int, met *metrics) *queue {
	q := &queue{cap: capacity, met: met}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job to its lane, or returns ErrQueueFull / ErrDraining.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.lanes[j.Priority]) >= q.cap {
		return ErrQueueFull
	}
	q.enqueueLocked(j)
	return nil
}

// pushUnbounded enqueues past the cap (retries, checkpoint restore).
// After close it silently drops: the drain checkpoint picks the job up
// from its table state instead.
func (q *queue) pushUnbounded(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.enqueueLocked(j)
}

func (q *queue) enqueueLocked(j *Job) {
	q.lanes[j.Priority] = append(q.lanes[j.Priority], j)
	q.met.queueDepth[j.Priority].Add(1)
	q.cond.Signal()
}

// pop blocks for the next job, interactive lane first. ok is false once
// the queue is closed and empty — the worker's exit signal. A closed
// queue still drains whatever it holds, so close + pop loops finish
// admitted work.
func (q *queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for pri := Priority(0); pri < laneCount; pri++ {
			if lane := q.lanes[pri]; len(lane) > 0 {
				j := lane[0]
				lane[0] = nil
				q.lanes[pri] = lane[1:]
				q.met.queueDepth[pri].Add(-1)
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops admission and wakes every blocked pop. Queued jobs drop:
// callers that need them (drain) read the job table, not the queue.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for pri := range q.lanes {
		q.met.queueDepth[pri].Add(-int64(len(q.lanes[pri])))
		q.lanes[pri] = nil
	}
	q.cond.Broadcast()
}

// depth reports queued jobs per lane (for tests and /metrics sanity).
func (q *queue) depth() [laneCount]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var d [laneCount]int
	for pri := range q.lanes {
		d[pri] = len(q.lanes[pri])
	}
	return d
}
