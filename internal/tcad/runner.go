package tcad

import (
	"fmt"

	"tca/internal/bench"
	"tca/internal/check"
	"tca/internal/scenariogen"
	"tca/internal/tcanet"
)

// Runner executes job bodies. The daemon uses DefaultRunner (the real
// simulator); tests substitute runners that panic, hang, or fail
// transiently to exercise the supervision machinery without needing a
// genuinely broken simulator.
type Runner interface {
	// RunScenario executes the full differential protocol on one spec.
	RunScenario(spec scenariogen.Spec, opt check.Options) (*check.DiffResult, error)
	// TraceScenario executes one run with observability retained, for
	// Perfetto trace export.
	TraceScenario(spec scenariogen.Spec, opt check.Options) (*check.Result, error)
	// RunSweep renders one named bench parameter sweep.
	RunSweep(name string) (*bench.Table, error)
}

// DefaultRunner drives the real simulator through internal/check and
// internal/bench.
type DefaultRunner struct{}

func (DefaultRunner) RunScenario(spec scenariogen.Spec, opt check.Options) (*check.DiffResult, error) {
	return check.RunDiff(spec, opt)
}

func (DefaultRunner) TraceScenario(spec scenariogen.Spec, opt check.Options) (*check.Result, error) {
	opt.KeepObs = true
	return check.Run(spec, opt)
}

func (DefaultRunner) RunSweep(name string) (*bench.Table, error) {
	fn, ok := bench.Sweeps()[name]
	if !ok {
		return nil, fmt.Errorf("unknown sweep %q", name)
	}
	return fn(tcanet.DefaultParams), nil
}
