// Package tcad is the supervised simulation service: the controlplane
// half of the controlplane/dataplane split that turns the batch simulator
// into a long-running daemon (cmd/tcad).
//
// The daemon accepts scenario specs (the scenariogen grammar, which
// embeds the fault.ParseScenario fault schedules) and parameter-sweep
// requests over an HTTP/JSON job API, schedules them onto a pool of
// worker goroutines — each worker drives one sim.Engine at a time — and
// serves results with full provenance. Every simulation engine stays
// single-threaded and bit-deterministic; all concurrency lives up here in
// host-side supervision code:
//
//   - Supervision: each job runs under recover(). A panicking scenario
//     becomes a structured failure carrying the stack, the offending
//     spec, and an auto-shrunk reproducer (scenariogen.Shrink) — never a
//     daemon crash.
//   - Deadlines and budgets: every engine run is bounded by a
//     sim.Engine budget (max events plus a host wall-clock allowance
//     checked every few hundred events through prof.HostNanos). A job
//     that exhausts its budget fails with the typed sim.BudgetError.
//     Transient failures retry with exponential backoff; poison jobs are
//     quarantined after MaxRetries.
//   - Backpressure: a bounded two-lane admission queue (interactive
//     ahead of sweep) sheds load with 503 + Retry-After when full, and a
//     SIGTERM-initiated drain finishes in-flight jobs, checkpoints the
//     pending queue to disk, and restores it on restart.
//   - Deterministic result cache: results are keyed by the canonical
//     spec form (which carries the seed) plus a fingerprint of the
//     simulation parameters. Concurrent identical submissions
//     deduplicate onto one engine run (singleflight), and an integrity
//     mode re-runs a sampled fraction of cache hits and byte-compares
//     the internal/check transcripts to prove cached results are still
//     bit-identical.
//
// The wall clock is legal here — this package is controlplane code, and
// host time (timeouts, backoff, latency metrics) never feeds simulated
// state — which is why the simdeterminism analyzer exempts exactly this
// package alongside internal/prof.
package tcad

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"tca/internal/obsv"
	"tca/internal/prof"
	"tca/internal/scenariogen"
)

// Typed admission errors; the HTTP layer maps them to status codes.
var (
	// ErrBadRequest: the submission was malformed (400).
	ErrBadRequest = errors.New("tcad: bad request")
	// ErrQueueFull: the lane's admission queue is at capacity (503 +
	// Retry-After).
	ErrQueueFull = errors.New("tcad: admission queue full")
	// ErrDraining: the daemon is shutting down and admits nothing (503).
	ErrDraining = errors.New("tcad: draining")
)

// TransientError marks a job failure as retryable: the scheduler re-runs
// the job with exponential backoff instead of failing it outright.
// Deterministic simulation errors are never transient; the type exists
// for host-side conditions (and for tests of the retry machinery).
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "tcad: transient: " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Config tunes a Server. The zero value of every field selects a sane
// default in New.
type Config struct {
	// Workers is the worker-goroutine count; each worker runs one
	// sim.Engine at a time. Default: runtime.GOMAXPROCS(0).
	Workers int
	// QueueCap bounds each priority lane of the admission queue; a full
	// lane sheds new submissions. Default 256.
	QueueCap int
	// MaxRetries bounds re-runs of a retryable (panicking or transient)
	// job before it is quarantined. Default 2.
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per attempt.
	// Default 100ms.
	RetryBackoff time.Duration
	// DefaultMaxEvents / DefaultMaxHost are the per-job engine-run
	// budgets applied when a submission does not set its own. Defaults:
	// 50M events, 30s host time.
	DefaultMaxEvents uint64
	DefaultMaxHost   time.Duration
	// VerifyEvery enables cache-integrity mode: every VerifyEvery-th
	// cache hit re-runs the scenario in the background and byte-compares
	// the internal/check transcript against the cached one. 0 disables.
	VerifyEvery int
	// CheckpointPath, when set, is where a drain persists the pending
	// queue and where New restores it from. "" disables checkpointing.
	CheckpointPath string
	// DrainGrace bounds how long Drain waits for in-flight jobs before
	// checkpointing them as pending and giving up. Default 30s.
	DrainGrace time.Duration
	// DisableShrink turns off reproducer minimization for quarantined
	// panicking jobs (each shrink step is a full simulation).
	DisableShrink bool
	// Runner executes job bodies; nil selects DefaultRunner. Tests
	// inject deliberate panics and transient failures here.
	Runner Runner
	// Registry receives the daemon's self-metrics; nil creates a fresh
	// one.
	Registry *obsv.Registry
	// Logf, when non-nil, receives one line per notable supervision
	// event (quarantine, verify failure, checkpoint restore).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.DefaultMaxEvents == 0 {
		c.DefaultMaxEvents = 50_000_000
	}
	if c.DefaultMaxHost == 0 {
		c.DefaultMaxHost = 30 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 30 * time.Second
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner{}
	}
	if c.Registry == nil {
		c.Registry = obsv.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the supervised simulation service. Create one with New; it
// starts its worker pool immediately and serves until Drain or Close.
type Server struct {
	cfg    Config
	met    *metrics
	q      *queue
	runner Runner

	// mu guards the job table, the result cache, and the draining flag.
	// The admission queue has its own lock; mu may be held while taking
	// it (push under admission), never the reverse.
	mu       sync.Mutex
	jobs     map[uint64]*Job
	order    []uint64 // submission order, for deterministic listings
	cache    map[string]*cacheEntry
	nextID   uint64
	draining bool

	// drainCh closes when a drain begins; retry sleepers abort on it so
	// their jobs are checkpointed instead of requeued.
	drainCh chan struct{}
	// wg counts workers, retry sleepers, and background verify runs.
	wg sync.WaitGroup
}

// New builds a Server, restores any checkpointed queue, and starts the
// worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		met:     newMetrics(cfg.Registry),
		runner:  cfg.Runner,
		jobs:    make(map[uint64]*Job),
		cache:   make(map[string]*cacheEntry),
		drainCh: make(chan struct{}),
	}
	s.q = newQueue(cfg.QueueCap, s.met)
	if err := s.restore(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit admits one job. Identical submissions (same cache key)
// deduplicate onto the existing job — one engine run no matter how many
// clients ask — and the response carries the canonical job ID. Shed and
// drain conditions surface as ErrQueueFull / ErrDraining.
func (s *Server) Submit(req Request) (SubmitResponse, error) {
	j, err := s.buildJob(req)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.shedDraining.Inc()
		return SubmitResponse{}, ErrDraining
	}
	if e, ok := s.cache[j.Key]; ok {
		owner := s.jobs[e.jobID]
		e.hits++
		s.met.cacheHits.Inc()
		resp := SubmitResponse{ID: e.jobID, State: string(owner.State), Cached: e.done}
		verify := e.done && owner.Kind == KindScenario &&
			s.cfg.VerifyEvery > 0 && e.hits%uint64(s.cfg.VerifyEvery) == 0
		want := e.transcript
		s.mu.Unlock()
		if verify {
			s.spawnVerify(owner, want)
		}
		return resp, nil
	}
	s.met.cacheMisses.Inc()
	s.nextID++
	j.ID = s.nextID
	j.State = StateQueued
	j.SubmittedNS = prof.HostNanos()
	if err := s.q.push(j); err != nil {
		s.nextID--
		s.mu.Unlock()
		s.met.shedFull.Inc()
		return SubmitResponse{}, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.cache[j.Key] = &cacheEntry{jobID: j.ID}
	s.mu.Unlock()
	s.met.submitted.Inc()
	return SubmitResponse{ID: j.ID, State: string(StateQueued)}, nil
}

// JobStatus snapshots one job for the API; ok is false for unknown IDs.
func (s *Server) JobStatus(id uint64) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Draining reports whether a drain has begun (readiness probes key off
// this).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs the graceful-shutdown protocol: stop admitting, let
// in-flight jobs finish (bounded by DrainGrace), then checkpoint every
// still-pending job to CheckpointPath so a restarted daemon completes
// the remainder. It returns an error if the grace period expired with
// jobs still running (they are checkpointed as pending anyway) or if the
// checkpoint could not be written.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("tcad: already draining")
	}
	s.draining = true
	close(s.drainCh)
	s.mu.Unlock()
	s.q.close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	timedOut := false
	t := time.NewTimer(s.cfg.DrainGrace)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		timedOut = true
	}
	if err := s.checkpoint(timedOut); err != nil {
		return err
	}
	if timedOut {
		return fmt.Errorf("tcad: drain grace %v expired with jobs still in flight (checkpointed as pending)", s.cfg.DrainGrace)
	}
	return nil
}

// Close stops the server without checkpointing: admission closes,
// workers finish their current job, background goroutines are reaped.
// Tests use it; the daemon path is Drain.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	s.q.close()
	s.wg.Wait()
}

// restore reloads a checkpointed queue written by a previous drain and
// deletes the file, so a crash during this run cannot double-restore.
func (s *Server) restore() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	cp, err := readCheckpoint(s.cfg.CheckpointPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	restored := 0
	for _, cj := range cp.Jobs {
		j, err := s.buildJob(cj.request())
		if err != nil {
			s.cfg.Logf("tcad: checkpoint job %d no longer admissible, dropping: %v", cj.ID, err)
			continue
		}
		j.ID = cj.ID
		j.Attempts = cj.Attempts
		j.State = StateQueued
		j.SubmittedNS = prof.HostNanos()
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if _, dup := s.cache[j.Key]; !dup {
			s.cache[j.Key] = &cacheEntry{jobID: j.ID}
		}
		s.q.pushUnbounded(j)
		if j.ID > s.nextID {
			s.nextID = j.ID
		}
		restored++
	}
	if cp.NextID > s.nextID {
		s.nextID = cp.NextID
	}
	if err := os.Remove(s.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("tcad: removing restored checkpoint: %w", err)
	}
	s.cfg.Logf("tcad: restored %d pending jobs from %s", restored, s.cfg.CheckpointPath)
	return nil
}

// buildJob validates and canonicalizes a submission into an unadmitted
// Job (no ID yet).
func (s *Server) buildJob(req Request) (*Job, error) {
	if (req.Spec == "") == (req.Sweep == "") {
		return nil, errors.New("exactly one of \"spec\" and \"sweep\" must be set")
	}
	pri, err := ParsePriority(req.Priority)
	if err != nil {
		return nil, err
	}
	j := &Job{
		Priority:  pri,
		MaxEvents: req.MaxEvents,
		MaxHost:   time.Duration(req.MaxHostMS) * time.Millisecond,
	}
	if j.MaxEvents == 0 {
		j.MaxEvents = s.cfg.DefaultMaxEvents
	}
	if j.MaxHost == 0 {
		j.MaxHost = s.cfg.DefaultMaxHost
	}
	if req.Spec != "" {
		spec, err := scenariogen.Parse(req.Spec)
		if err != nil {
			return nil, err
		}
		j.Kind = KindScenario
		j.Spec = spec
		j.SpecText = scenariogen.Format(spec)
		j.Key = scenarioKey(j.SpecText)
		return j, nil
	}
	if !knownSweep(req.Sweep) {
		return nil, fmt.Errorf("unknown sweep %q", req.Sweep)
	}
	j.Kind = KindSweep
	j.Sweep = req.Sweep
	j.Key = sweepKey(req.Sweep)
	return j, nil
}
