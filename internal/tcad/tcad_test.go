package tcad

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tca/internal/bench"
	"tca/internal/check"
	"tca/internal/obsv"
	"tca/internal/scenariogen"
	"tca/internal/sim"
)

// spec returns a small valid canonical spec, varied by seed so tests can
// mint distinct cache keys at will.
func spec(t *testing.T, seed int64) string {
	t.Helper()
	return scenariogen.Format(scenariogen.Generate(seed))
}

// fakeRunner scripts job outcomes per canonical spec text. The zero
// behavior is instant success with a transcript derived from the spec,
// which keeps results deterministic without running the simulator.
type fakeRunner struct {
	mu sync.Mutex
	// panicSpecs / transientFailures / budgetSpecs key on the canonical
	// spec; transientFailures counts down (fail while > 0).
	panicSpecs        map[string]bool
	transientFailures map[string]int
	budgetSpecs       map[string]bool
	// delay stalls every run, for drain/backpressure tests.
	delay time.Duration
	// transcriptSalt perturbs transcripts, for cache-verify tests.
	transcriptSalt string
	runs           int
}

func (f *fakeRunner) runCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

func (f *fakeRunner) RunScenario(s scenariogen.Spec, opt check.Options) (*check.DiffResult, error) {
	canon := scenariogen.Format(s)
	f.mu.Lock()
	f.runs++
	delay := f.delay
	doPanic := f.panicSpecs[canon]
	budget := f.budgetSpecs[canon]
	transient := false
	if n := f.transientFailures[canon]; n > 0 {
		f.transientFailures[canon] = n - 1
		transient = true
	}
	salt := f.transcriptSalt
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if doPanic {
		panic("fakeRunner: deliberate panic for " + canon)
	}
	if budget {
		return nil, &sim.BudgetError{Reason: sim.StopMaxEvents, Events: opt.MaxEvents}
	}
	if transient {
		return nil, &TransientError{Err: errors.New("scripted transient failure")}
	}
	transcript := []byte("transcript(" + canon + ")" + salt)
	return &check.DiffResult{
		Faulty:        &check.Result{Spec: s, Transcript: transcript, FullyRecovered: true, OpsDone: len(s.Ops)},
		DeterminismOK: true,
	}, nil
}

func (f *fakeRunner) TraceScenario(s scenariogen.Spec, opt check.Options) (*check.Result, error) {
	opt.KeepObs = true
	return check.Run(s, opt)
}

func (f *fakeRunner) RunSweep(name string) (*bench.Table, error) {
	return &bench.Table{ID: name, Title: "fake " + name}, nil
}

func newFake() *fakeRunner {
	return &fakeRunner{
		panicSpecs:        map[string]bool{},
		transientFailures: map[string]int{},
		budgetSpecs:       map[string]bool{},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *fakeRunner) {
	t.Helper()
	fake := newFake()
	if cfg.Runner == nil {
		cfg.Runner = fake
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, fake
}

// waitState polls until the job reaches a terminal-enough state.
func waitState(t *testing.T, s *Server, id uint64, want ...State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.JobStatus(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		for _, w := range want {
			if st.State == string(w) {
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.JobStatus(id)
	t.Fatalf("job %d stuck in %q, want one of %v", id, st.State, want)
	return Status{}
}

func TestSubmitValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []Request{
		{},                                   // neither
		{Spec: spec(t, 1), Sweep: "cable"},   // both
		{Spec: "not a spec"},                 // unparseable
		{Sweep: "no-such-sweep"},             // unknown sweep
		{Spec: spec(t, 1), Priority: "high"}, // bad lane
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: got %v, want ErrBadRequest", i, err)
		}
	}
}

func TestScenarioJobSucceeds(t *testing.T) {
	s, fake := newTestServer(t, Config{})
	resp, err := s.Submit(Request{Spec: spec(t, 7)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, resp.ID, StateSucceeded)
	if !strings.Contains(string(st.Result), `"version": "tcad-result/1"`) &&
		!strings.Contains(string(st.Result), `"version":"tcad-result/1"`) {
		t.Fatalf("result payload missing version: %s", st.Result)
	}
	if fake.runCount() != 1 {
		t.Fatalf("runs = %d, want 1", fake.runCount())
	}
	if st.RunNS <= 0 || st.QueueNS < 0 {
		t.Fatalf("latency stamps not recorded: queue=%d run=%d", st.QueueNS, st.RunNS)
	}
}

func TestDuplicateSubmissionsSingleflightByteIdentical(t *testing.T) {
	s, fake := newTestServer(t, Config{})
	text := spec(t, 11)
	first, err := s.Submit(Request{Spec: text})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, first.ID, StateSucceeded)

	// Every duplicate — including a re-parse of the same scenario with
	// different surface syntax (Format is canonical, so Format(Parse(x))
	// collapses them) — lands on the same job and the same bytes.
	for i := 0; i < 5; i++ {
		dup, err := s.Submit(Request{Spec: text})
		if err != nil {
			t.Fatalf("dup Submit: %v", err)
		}
		if dup.ID != first.ID || !dup.Cached {
			t.Fatalf("dup %d: got id=%d cached=%v, want id=%d cached=true", i, dup.ID, dup.Cached, first.ID)
		}
		st2, _ := s.JobStatus(dup.ID)
		if !bytes.Equal(st2.Result, st.Result) {
			t.Fatalf("dup %d: result bytes diverged", i)
		}
	}
	if fake.runCount() != 1 {
		t.Fatalf("runs = %d, want 1 (singleflight)", fake.runCount())
	}
}

func TestConcurrentDuplicatesRunOnce(t *testing.T) {
	s, fake := newTestServer(t, Config{Workers: 4})
	fake.delay = 20 * time.Millisecond
	text := spec(t, 13)
	var wg sync.WaitGroup
	ids := make([]uint64, 16)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(Request{Spec: text})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids[i] = resp.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("ids diverged: %v", ids)
		}
	}
	waitState(t, s, ids[0], StateSucceeded)
	if fake.runCount() != 1 {
		t.Fatalf("runs = %d, want 1", fake.runCount())
	}
}

func TestPanicQuarantineWithReproducerDaemonSurvives(t *testing.T) {
	s, fake := newTestServer(t, Config{MaxRetries: 1})
	// The fake panics only on this exact canonical spec; no shrink
	// candidate reproduces, so Shrink falls back to the original — the
	// reproducer is then the offending spec itself, still valid.
	text := spec(t, 17)
	fake.mu.Lock()
	fake.panicSpecs[text] = true
	fake.mu.Unlock()

	resp, err := s.Submit(Request{Spec: text})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, resp.ID, StateQuarantined)
	if st.Failure == nil || st.Failure.Class != FailPanic {
		t.Fatalf("failure = %+v, want class panic", st.Failure)
	}
	if !strings.Contains(st.Failure.Message, "deliberate panic") {
		t.Fatalf("message %q lacks panic value", st.Failure.Message)
	}
	if !strings.Contains(st.Failure.Stack, "tcad") {
		t.Fatalf("stack not captured")
	}
	if st.Failure.Attempts != 2 { // first run + 1 retry
		t.Fatalf("attempts = %d, want 2", st.Failure.Attempts)
	}
	if st.Failure.Reproducer == "" {
		t.Fatalf("no reproducer recorded")
	}
	if _, err := scenariogen.Parse(st.Failure.Reproducer); err != nil {
		t.Fatalf("reproducer not a valid spec: %v", err)
	}

	// The daemon keeps serving after a poison job.
	ok, err := s.Submit(Request{Spec: spec(t, 18)})
	if err != nil {
		t.Fatalf("post-quarantine Submit: %v", err)
	}
	waitState(t, s, ok.ID, StateSucceeded)
}

func TestBudgetExceededIsTypedTerminalFailure(t *testing.T) {
	s, fake := newTestServer(t, Config{})
	text := spec(t, 19)
	fake.mu.Lock()
	fake.budgetSpecs[text] = true
	fake.mu.Unlock()

	resp, err := s.Submit(Request{Spec: text, MaxEvents: 123})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, resp.ID, StateFailed)
	if st.Failure == nil || st.Failure.Class != FailBudget {
		t.Fatalf("failure = %+v, want class budget", st.Failure)
	}
	if st.Failure.Attempts != 1 {
		t.Fatalf("budget failures must not retry; attempts = %d", st.Failure.Attempts)
	}
	if fake.runCount() != 1 {
		t.Fatalf("runs = %d, want 1", fake.runCount())
	}
}

func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	s, fake := newTestServer(t, Config{MaxRetries: 2})
	text := spec(t, 23)
	fake.mu.Lock()
	fake.transientFailures[text] = 2
	fake.mu.Unlock()

	resp, err := s.Submit(Request{Spec: text})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, resp.ID, StateSucceeded)
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two transient failures, then success)", st.Attempts)
	}
}

func TestTransientFailureExhaustsRetries(t *testing.T) {
	s, fake := newTestServer(t, Config{MaxRetries: 1})
	text := spec(t, 29)
	fake.mu.Lock()
	fake.transientFailures[text] = 100
	fake.mu.Unlock()

	resp, err := s.Submit(Request{Spec: text})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, resp.ID, StateFailed)
	if st.Failure == nil || st.Failure.Class != FailTransient {
		t.Fatalf("failure = %+v, want class transient", st.Failure)
	}
	if st.Failure.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", st.Failure.Attempts)
	}
	// A terminal failure releases the cache slot: resubmission runs again
	// rather than being pinned to the failed job.
	fake.mu.Lock()
	fake.transientFailures[text] = 0
	fake.mu.Unlock()
	resp2, err := s.Submit(Request{Spec: text})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if resp2.ID == resp.ID {
		t.Fatalf("resubmission reused failed job %d", resp.ID)
	}
	waitState(t, s, resp2.ID, StateSucceeded)
}

func TestBackpressureSheds(t *testing.T) {
	s, fake := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	fake.delay = 50 * time.Millisecond
	shed := 0
	for i := 0; i < 20; i++ {
		_, err := s.Submit(Request{Spec: spec(t, 100+int64(i))})
		if errors.Is(err, ErrQueueFull) {
			shed++
		} else if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if shed == 0 {
		t.Fatalf("queue cap 2 with slow worker shed nothing across 20 distinct submissions")
	}
	snap := s.cfg.Registry.Snapshot(0)
	if v, _ := snap.Counter("tcad_jobs_shed", "tcad", labelReason("queue-full")); v != uint64(shed) {
		t.Fatalf("shed counter = %d, want %d", v, shed)
	}
}

func TestLanePriority(t *testing.T) {
	met := newMetrics(nil)
	q := newQueue(16, met)
	mk := func(id uint64, pri Priority) *Job { return &Job{ID: id, Priority: pri} }
	if err := q.push(mk(1, PrioritySweep)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(2, PrioritySweep)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(3, PriorityInteractive)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mk(4, PriorityInteractive)); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for i := 0; i < 4; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		got = append(got, j.ID)
	}
	want := []uint64{3, 4, 1, 2} // interactive lane first, FIFO within lanes
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueCapPerLane(t *testing.T) {
	q := newQueue(1, newMetrics(nil))
	if err := q.push(&Job{ID: 1, Priority: PrioritySweep}); err != nil {
		t.Fatal(err)
	}
	if err := q.push(&Job{ID: 2, Priority: PrioritySweep}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second sweep push: %v, want ErrQueueFull", err)
	}
	// The interactive lane has its own budget.
	if err := q.push(&Job{ID: 3, Priority: PriorityInteractive}); err != nil {
		t.Fatalf("interactive push after sweep lane full: %v", err)
	}
	// pushUnbounded ignores the cap.
	q.pushUnbounded(&Job{ID: 4, Priority: PrioritySweep})
	if d := q.depth(); d[PrioritySweep] != 2 || d[PriorityInteractive] != 1 {
		t.Fatalf("depth = %v", d)
	}
}

func TestQueueCloseWakesPop(t *testing.T) {
	q := newQueue(4, newMetrics(nil))
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatalf("pop returned a job from a closed empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("pop did not wake on close")
	}
}

func TestSweepJob(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	resp, err := s.Submit(Request{Sweep: "cable", Priority: "sweep"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, resp.ID, StateSucceeded)
	if !strings.Contains(string(st.Result), sweepResultVersion) {
		t.Fatalf("sweep result missing version: %s", st.Result)
	}
}

func TestCacheVerifyPassAndInjectedMismatch(t *testing.T) {
	s, fake := newTestServer(t, Config{VerifyEvery: 1})
	text := spec(t, 31)
	resp, err := s.Submit(Request{Spec: text})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, resp.ID, StateSucceeded)

	// Clean hit: verify re-runs and matches.
	if _, err := s.Submit(Request{Spec: text}); err != nil {
		t.Fatalf("dup Submit: %v", err)
	}
	waitCounter(t, s, "tcad_cache_verify_runs", 1)
	if v := counter(s, "tcad_cache_verify_failures"); v != 0 {
		t.Fatalf("verify failures = %d after clean hit", v)
	}

	// Poison the runner so the next verify re-run produces different
	// transcript bytes: the integrity mode must catch it.
	fake.mu.Lock()
	fake.transcriptSalt = "!corrupted"
	fake.mu.Unlock()
	if _, err := s.Submit(Request{Spec: text}); err != nil {
		t.Fatalf("dup Submit: %v", err)
	}
	waitCounter(t, s, "tcad_cache_verify_failures", 1)
	s.mu.Lock()
	entry := s.cache[scenarioKey(text)]
	poisoned := entry != nil && entry.verifyFailed
	s.mu.Unlock()
	if !poisoned {
		t.Fatalf("cache entry not marked verifyFailed after mismatch")
	}
}

func counter(s *Server, name string) uint64 {
	v, _ := s.cfg.Registry.Snapshot(0).Counter(name, "tcad")
	return v
}

func waitCounter(t *testing.T, s *Server, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if counter(s, name) >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("counter %s = %d, want >= %d", name, counter(s, name), want)
}

func TestDrainCheckpointRestartCompletesRemainder(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "tcad.checkpoint")

	fake := newFake()
	fake.delay = 10 * time.Millisecond
	s, err := New(Config{
		Workers:        1,
		QueueCap:       128,
		CheckpointPath: cpPath,
		DrainGrace:     5 * time.Second,
		Runner:         fake,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const burst = 50
	ids := make([]uint64, 0, burst)
	for i := 0; i < burst; i++ {
		resp, err := s.Submit(Request{Spec: spec(t, 1000+int64(i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, resp.ID)
	}
	// Drain mid-burst: the single slow worker cannot have finished 50.
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	var doneFirst, pendingFirst int
	for _, st := range s.Jobs() {
		switch State(st.State) {
		case StateSucceeded:
			doneFirst++
		case StateQueued, StateRetryWait:
			pendingFirst++
		}
	}
	if pendingFirst == 0 {
		t.Fatalf("drain finished all %d jobs; burst too small to exercise checkpointing", burst)
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Restart: the new daemon restores the remainder and completes it.
	fake2 := newFake()
	s2, err := New(Config{
		Workers:        2,
		QueueCap:       128,
		CheckpointPath: cpPath,
		Runner:         fake2,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	t.Cleanup(s2.Close)
	if _, err := os.Stat(cpPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("restored checkpoint not removed: %v", err)
	}
	if got := len(s2.Jobs()); got != pendingFirst {
		t.Fatalf("restored %d jobs, want %d", got, pendingFirst)
	}
	for _, st := range s2.Jobs() {
		waitState(t, s2, st.ID, StateSucceeded)
	}
	// Job IDs survive the restart, so clients polling /jobs/{id} across
	// the restart see their job complete under the same ID.
	restored := map[uint64]bool{}
	for _, st := range s2.Jobs() {
		restored[st.ID] = true
	}
	for _, id := range ids {
		st, ok := s.JobStatus(id)
		if !ok {
			t.Fatalf("job %d missing from old server", id)
		}
		if st.State != string(StateSucceeded) && !restored[id] {
			t.Fatalf("job %d neither finished before drain nor restored after", id)
		}
	}

	// New submissions on the restarted daemon get fresh IDs.
	resp, err := s2.Submit(Request{Spec: spec(t, 9999)})
	if err != nil {
		t.Fatalf("post-restart Submit: %v", err)
	}
	for _, id := range ids {
		if resp.ID == id {
			t.Fatalf("post-restart job reused ID %d", id)
		}
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := s.Submit(Request{Spec: spec(t, 41)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain: %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Fatalf("Draining() false after Drain")
	}
	if err := s.Drain(); err == nil {
		t.Fatalf("second Drain should error")
	}
}

// TestBurstStormRates is the EXPERIMENTS.md measurement: a bursty storm
// of submissions over a small hot set of distinct specs, against a small
// queue. It reports the cache-hit rate and shed rate. Values are printed
// via t.Logf; run with -v to read them.
func TestBurstStormRates(t *testing.T) {
	s, fake := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	fake.delay = 2 * time.Millisecond

	const (
		clients    = 8
		perClient  = 50
		hotSpecs   = 16
		totalTries = clients * perClient
	)
	specs := make([]string, hotSpecs)
	for i := range specs {
		specs[i] = spec(t, 2000+int64(i))
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, err := s.Submit(Request{Spec: specs[(c*7+i)%hotSpecs]})
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	hits := counter(s, "tcad_cache_hits")
	misses := counter(s, "tcad_cache_misses")
	shedSnap := s.cfg.Registry.Snapshot(0)
	shed, _ := shedSnap.Counter("tcad_jobs_shed", "tcad", labelReason("queue-full"))
	if hits+misses+0 == 0 {
		t.Fatalf("no submissions accounted")
	}
	hitRate := float64(hits) / float64(hits+misses)
	shedRate := float64(shed) / float64(totalTries)
	t.Logf("burst storm: %d submissions over %d hot specs: cache hits %d, misses %d (hit rate %.1f%%), shed %d (shed rate %.1f%%)",
		totalTries, hotSpecs, hits, misses, 100*hitRate, shed, 100*shedRate)
	if hits == 0 {
		t.Fatalf("storm over %d hot specs produced zero cache hits", hotSpecs)
	}
	// A shed submission never creates a cache entry, so a later submit of
	// the same spec can legitimately run it again — runs are bounded by
	// the hot-set size plus the shed count, not by total submissions.
	if max := hotSpecs + int(shed); fake.runCount() > max {
		t.Fatalf("runs = %d, want <= %d (singleflight per admitted spec)", fake.runCount(), max)
	}
}

func labelReason(v string) obsv.Label {
	return obsv.Label{Key: "reason", Value: v}
}
