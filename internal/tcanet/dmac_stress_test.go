package tcanet

import (
	"bytes"
	"testing"

	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/units"
)

// TestDMAManyReadDescriptorsTagStarvation drives a 200-descriptor read
// chain: with only 16 outstanding-read tags the DMAC must recycle tags
// hundreds of times without losing or reordering data.
func TestDMAManyReadDescriptorsTagStarvation(t *testing.T) {
	eng, sc := buildRing(t, 2)
	const count = 200
	const size = 1024
	want := make([]byte, count*size)
	for i := range want {
		want[i] = byte(i*7 + i>>9)
	}
	src, _ := sc.Node(0).AllocDMABuffer(count * size)
	if err := sc.Node(0).WriteLocal(src, want); err != nil {
		t.Fatal(err)
	}
	var descs []peach2.Descriptor
	for i := 0; i < count; i++ {
		descs = append(descs, peach2.Descriptor{
			Kind: peach2.DescRead, Len: size,
			Src: uint64(src) + uint64(i*size),
			Dst: uint64(i * size),
		})
	}
	driveDMA(t, eng, sc, 0, descs)
	got, _ := sc.Chip(0).InternalMemory().ReadBytes(0, count*size)
	if !bytes.Equal(got, want) {
		t.Fatal("tag-starved read chain corrupted data")
	}
}

// TestDMAMixedChain runs writes and reads in one chain against disjoint
// regions; the hardware pipelines them concurrently and both must land.
func TestDMAMixedChain(t *testing.T) {
	eng, sc := buildRing(t, 2)
	wData := make([]byte, 4096)
	for i := range wData {
		wData[i] = byte(i * 3)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, wData); err != nil {
		t.Fatal(err)
	}
	rData := make([]byte, 4096)
	for i := range rData {
		rData[i] = byte(i * 5)
	}
	hostW, _ := sc.Node(0).AllocDMABuffer(4 * units.KiB)
	hostR, _ := sc.Node(0).AllocDMABuffer(4 * units.KiB)
	if err := sc.Node(0).WriteLocal(hostR, rData); err != nil {
		t.Fatal(err)
	}
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: 4096, Src: 0, Dst: uint64(hostW)},
		{Kind: peach2.DescRead, Len: 4096, Src: uint64(hostR), Dst: 0x10000},
	})
	gotW, _ := sc.Node(0).ReadLocal(hostW, 4096)
	if !bytes.Equal(gotW, wData) {
		t.Fatal("write leg corrupted")
	}
	gotR, _ := sc.Chip(0).InternalMemory().ReadBytes(0x10000, 4096)
	if !bytes.Equal(gotR, rData) {
		t.Fatal("read leg corrupted")
	}
}

// TestDMAUnalignedSizesAndOffsets sweeps awkward transfer geometries
// (sizes straddling page and payload boundaries at odd offsets).
func TestDMAUnalignedSizesAndOffsets(t *testing.T) {
	cases := []struct {
		size units.ByteSize
		off  uint64
	}{
		{1, 0}, {3, 4093}, {255, 1}, {257, 4095}, {4097, 2048}, {5000, 12345},
	}
	for _, c := range cases {
		eng, sc := buildRing(t, 2)
		want := make([]byte, c.size)
		for i := range want {
			want[i] = byte(i ^ 0xA5)
		}
		if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
			t.Fatal(err)
		}
		dstBuf, _ := sc.Node(1).AllocDMABuffer(64 * units.KiB)
		dst, _ := sc.GlobalHostAddr(1, dstBuf+pcie.Addr(c.off))
		driveDMA(t, eng, sc, 0, []peach2.Descriptor{
			{Kind: peach2.DescWrite, Len: c.size, Src: 0, Dst: uint64(dst)},
		})
		got, _ := sc.Node(1).ReadLocal(dstBuf+pcie.Addr(c.off), c.size)
		if !bytes.Equal(got, want) {
			t.Fatalf("size=%v off=%d corrupted", c.size, c.off)
		}
	}
}

// TestDMADoorbellWhileBusyPanics asserts the single-DMAC hardware
// constraint the driver's queueing exists to respect.
func TestDMADoorbellWhileBusyPanics(t *testing.T) {
	eng, sc := buildRing(t, 2)
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	dst, _ := sc.Node(0).AllocDMABuffer(units.MiB)
	table := peach2.EncodeTable([]peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: units.MiB, Src: 0, Dst: uint64(dst)},
	})
	buf, _ := sc.Node(0).AllocDMABuffer(units.ByteSize(len(table)))
	if err := sc.Node(0).WriteLocal(buf, table); err != nil {
		t.Fatal(err)
	}
	regs := sc.Plan().InternalBlock(0).Base
	b8 := func(v uint64) []byte {
		out := make([]byte, 8)
		for i := range out {
			out[i] = byte(v >> (8 * i))
		}
		return out
	}
	sc.Node(0).Store(regs+pcie.Addr(peach2.RegDMATable), b8(uint64(buf)))
	sc.Node(0).Store(regs+pcie.Addr(peach2.RegDMACount), b8(1))
	// Second doorbell lands while the 1 MiB chain is still running.
	defer func() {
		if recover() == nil {
			t.Fatal("doorbell while busy did not panic")
		}
	}()
	sc.Node(0).Store(regs+pcie.Addr(peach2.RegDMACount), b8(1))
	eng.Run()
}

// TestDMAImmediateWithRemoteFlush verifies StartImmediate honours the
// flush-ack protocol for remote host targets.
func TestDMAImmediateWithRemoteFlush(t *testing.T) {
	eng, sc := buildRing(t, 2)
	want := []byte("immediate remote put")
	if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := sc.Node(1).AllocDMABuffer(4 * units.KiB)
	dst, _ := sc.GlobalHostAddr(1, dstBuf)
	var doneAt sim.Time
	sc.Chip(0).SetIRQHandler(func(now sim.Time) { doneAt = now })
	sc.Chip(0).DMAC().StartImmediate(eng.Now(), peach2.Descriptor{
		Kind: peach2.DescWrite, Len: units.ByteSize(len(want)), Src: 0, Dst: uint64(dst),
	})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("immediate chain never completed")
	}
	got, _ := sc.Node(1).ReadLocal(dstBuf, units.ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("immediate remote put corrupted data")
	}
	if sc.Chip(1).Stats().AcksSent != 1 || sc.Chip(0).Stats().AcksRecv != 1 {
		t.Fatal("flush ack missing on immediate remote put")
	}
}

// TestDMAWriteToBothGPUs checks both conversion entries (GPU0 and GPU1
// blocks map to different BAR windows).
func TestDMAWriteToBothGPUs(t *testing.T) {
	for g := 0; g < 2; g++ {
		eng, sc := buildRing(t, 2)
		gpu := sc.Node(1).GPU(g)
		ptr, _ := gpu.MemAlloc(64 * units.KiB)
		tok, _ := gpu.PointerGetAttribute(ptr)
		bus, _ := gpu.Pin(tok)
		dst, err := sc.GlobalGPUAddr(1, g, bus)
		if err != nil {
			t.Fatal(err)
		}
		want := []byte{1, 2, 3, 4, byte(g)}
		if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
			t.Fatal(err)
		}
		driveDMA(t, eng, sc, 0, []peach2.Descriptor{
			{Kind: peach2.DescWrite, Len: units.ByteSize(len(want)), Src: 0, Dst: uint64(dst)},
		})
		got, _ := gpu.Memory().ReadBytes(uint64(ptr), units.ByteSize(len(want)))
		if !bytes.Equal(got, want) {
			t.Fatalf("GPU%d write corrupted", g)
		}
	}
}

// TestRemoteDMAReadRejected asserts the RDMA-put-only restriction at the
// DMAC level: a read descriptor whose source is a remote global address
// must panic rather than emit an MRd onto the ring.
func TestRemoteDMAReadRejected(t *testing.T) {
	eng, sc := buildRing(t, 2)
	remote, _ := sc.GlobalHostAddr(1, 0x1000)
	defer func() {
		if recover() == nil {
			t.Fatal("remote DMA read did not panic (RDMA put only, §III-F)")
		}
	}()
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescRead, Len: 64, Src: uint64(remote), Dst: 0},
	})
}

// TestChainedWriteFarNode sends a 255-burst across three hops and checks
// bandwidth stays in the local class (cut-through ring pipelining).
func TestChainedWriteFarNode(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildRing(eng, 8, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := sc.Node(4).AllocDMABuffer(255 * 4096)
	var descs []peach2.Descriptor
	for i := 0; i < 255; i++ {
		dst, _ := sc.GlobalHostAddr(4, dstBuf+pcie.Addr(i*4096))
		descs = append(descs, peach2.Descriptor{Kind: peach2.DescWrite, Len: 4096, Src: 0, Dst: uint64(dst)})
	}
	start := eng.Now()
	end := driveDMA(t, eng, sc, 0, descs)
	bw := units.Rate(255*4096, end.Sub(start))
	if bw.GBps() < 3.0 {
		t.Fatalf("4-hop chained write = %v — ring pipelining broken", bw)
	}
}
