package tcanet

import (
	"testing"

	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/sim"
)

// TestDualRingSpanCrossesPortS traces a PIO store from ring A to ring B of
// a dual-ring sub-cluster and checks the breakdown: the packet enters the
// peer chip through Port S (the ring-coupling port of §III-D) and the hop
// sum equals the measured store-to-poll latency.
func TestDualRingSpanCrossesPortS(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildDualRing(eng, 2, DefaultParams) // nodes 0,1 ring A; 2,3 ring B
	if err != nil {
		t.Fatal(err)
	}
	set := obsv.NewSet(1024)
	sc.Instrument(set)

	const dst = 2 // node 0's Port-S peer
	buf, err := sc.Node(dst).AllocDMABuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.GlobalHostAddr(dst, buf)
	if err != nil {
		t.Fatal(err)
	}
	var seen sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: buf, Size: 8}, func(now sim.Time) { seen = now })
	txn := sc.Node(0).StoreTxn(g, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	eng.Run()
	if seen == 0 {
		t.Fatal("cross-ring store never observed")
	}
	if txn == 0 {
		t.Fatal("instrumented store got no transaction ID")
	}

	events := set.Recorder().TxnEvents(txn)
	hops := obsv.Breakdown(events)
	if len(hops) == 0 {
		t.Fatal("no hops recorded")
	}
	crossedS := false
	for _, ev := range events {
		if ev.Stage == obsv.StagePortIn && ev.Where == "peach2-2" && ev.Port == "S" {
			crossedS = true
		}
	}
	if !crossedS {
		t.Errorf("span never entered peach2-2 through Port S; events:\n%v", events)
	}
	// The store issued at t=0, so the hop sum is the full one-way latency.
	if got := obsv.TotalLatency(hops); sim.Time(0).Add(got) != seen {
		t.Errorf("hop sum %v != store-to-poll latency %v", got, seen)
	}
}
