package tcanet

import (
	"errors"
	"fmt"

	"tca/internal/pcie"
	"tca/internal/peach2"
)

// Failover: one of PEACH2's design advantages over the NTB (§V) is that
// "the link state with the other node has no impact on the connection
// between the host and the PEACH2 chip" — a dead cable degrades the ring
// into a line instead of rebooting hosts. The NIOS management controllers
// detect the dead link (replay exhaustion in the data-link layer) and the
// management plane reprograms the Fig. 5 registers; RingRoutesAvoiding
// computes those replacement rules and SubCluster.RerouteAvoidingCut
// applies them — at build time for static avoidance or mid-run through
// EnableAutoFailover (faultinject.go).

// ErrRouteRulesOverflow tags the failure mode where a topology's avoidance
// rules do not fit the eight Fig. 5 register sets. The NIOS health monitor
// degrades gracefully on it (leaves routes untouched, logs, falls back to
// the host/IB path) instead of crashing the chip model.
var ErrRouteRulesOverflow = errors.New("tcanet: avoidance rules exceed the route register file")

// RingRoutesAvoiding computes node i's routing rules when the eastward
// cable out of node cut (the link cut→cut+1) must not be used: every
// destination routes along the surviving arc. With a single cut the ring
// is a line, so exactly one direction works for each destination. Returns
// an error wrapping ErrRouteRulesOverflow when the line's rules do not fit
// the register file.
func (p Plan) RingRoutesAvoiding(i, cut int) ([]peach2.RouteRule, error) {
	p.checkNode(i)
	p.checkNode(cut)
	return p.ringRoutesAvoidingIn(0, p.nodes, i, cut, nil)
}

// ringRoutesAvoidingIn is RingRoutesAvoiding generalized to a k-node ring
// spanning nodes [base, base+k) of the plan — the dual-ring case, where
// each ring fails over independently and every chip must also keep its
// extra rules (the Port-S coupling) intact. i and cut are global node IDs
// inside the ring; extra rules count against the register budget.
func (p Plan) ringRoutesAvoidingIn(base, k, i, cut int, extra []peach2.RouteRule) ([]peach2.RouteRule, error) {
	local, cutLocal := i-base, cut-base
	if local < 0 || local >= k || cutLocal < 0 || cutLocal >= k {
		panic(fmt.Sprintf("tcanet: node %d or cut %d outside ring [%d, %d)", i, cut, base, base+k))
	}
	var east, west []int
	for d := 0; d < k; d++ {
		if d == local {
			continue
		}
		// Going east from local to d traverses east-links local,
		// local+1, ..., d-1 (mod k); the path is usable iff the cut link
		// is not among them.
		de := (d - local + k) % k
		cutPos := (cutLocal - local + k) % k
		if cutPos >= de {
			east = append(east, base+d)
		} else {
			west = append(west, base+d)
		}
	}
	mask := ^pcie.Addr(p.windowSize - 1)
	rules := append([]peach2.RouteRule(nil), extra...)
	for _, r := range idRanges(east) {
		rules = append(rules, peach2.RouteRule{Mask: mask, Lower: p.NodeWindow(r[0]).Base, Upper: p.NodeWindow(r[1]).Base, Out: peach2.PortE})
	}
	for _, r := range idRanges(west) {
		rules = append(rules, peach2.RouteRule{Mask: mask, Lower: p.NodeWindow(r[0]).Base, Upper: p.NodeWindow(r[1]).Base, Out: peach2.PortW})
	}
	if len(rules) > peach2.MaxRouteRules {
		return nil, fmt.Errorf("%w: node %d needs %d rules for cut %d (max %d)",
			ErrRouteRulesOverflow, i, len(rules), cut, peach2.MaxRouteRules)
	}
	return rules, nil
}

// sCouplingRule returns chip i's Port-S rule in a dual ring: the other
// ring's whole window range exits south.
func (sc *SubCluster) sCouplingRule(i int) []peach2.RouteRule {
	k := sc.ringSize
	ring := i / k
	otherBase := (1 - ring) * k
	mask := ^pcie.Addr(sc.plan.windowSize - 1)
	return []peach2.RouteRule{{
		Mask:  mask,
		Lower: sc.plan.NodeWindow(otherBase).Base,
		Upper: sc.plan.NodeWindow(otherBase + k - 1).Base,
		Out:   peach2.PortS,
	}}
}

// RerouteAvoidingCut reprograms the affected ring to avoid the eastward
// cable out of node cut — the management-plane response to a dead link. In
// a dual ring only the cut node's ring is reprogrammed and every chip
// keeps its Port-S coupling rule. The update is all-or-nothing: the rules
// for every chip are computed (and checked against the register file)
// before any chip is touched, so an overflow leaves the fabric in its
// previous state. Traffic parked on dead egresses is re-injected by each
// chip as its routes are rewritten.
func (sc *SubCluster) RerouteAvoidingCut(cut int) error {
	if cut < 0 || cut >= len(sc.chips) {
		panic(fmt.Sprintf("tcanet: cut link %d outside sub-cluster of %d", cut, len(sc.chips)))
	}
	k := sc.ringSize
	if k == 0 {
		k = len(sc.chips) // single ring built before the field existed
	}
	base := cut / k * k
	rules := make([][]peach2.RouteRule, k)
	for li := 0; li < k; li++ {
		i := base + li
		var extra []peach2.RouteRule
		if sc.dualRing {
			extra = sc.sCouplingRule(i)
		}
		r, err := sc.plan.ringRoutesAvoidingIn(base, k, i, cut, extra)
		if err != nil {
			return err
		}
		rules[li] = r
	}
	for li := 0; li < k; li++ {
		sc.chips[base+li].SetRoutes(rules[li])
	}
	return nil
}
