package tcanet

import (
	"fmt"

	"tca/internal/pcie"
	"tca/internal/peach2"
)

// Failover: one of PEACH2's design advantages over the NTB (§V) is that
// "the link state with the other node has no impact on the connection
// between the host and the PEACH2 chip" — a dead cable degrades the ring
// into a line instead of rebooting hosts. The NIOS management controllers
// would detect the dead link and the management plane would reprogram the
// Fig. 5 registers; RingRoutesAvoiding computes those replacement rules.

// RingRoutesAvoiding computes node i's routing rules when the eastward
// cable out of node cut (the link cut→cut+1) must not be used: every
// destination routes along the surviving arc. With a single cut the ring
// is a line, so exactly one direction works for each destination.
func (p Plan) RingRoutesAvoiding(i, cut int) []peach2.RouteRule {
	p.checkNode(i)
	p.checkNode(cut)
	n := p.nodes
	var east, west []int
	for d := 0; d < n; d++ {
		if d == i {
			continue
		}
		// Going east from i to d traverses east-links i, i+1, ..., d-1
		// (mod n); the path is usable iff the cut link is not among
		// them.
		de := (d - i + n) % n
		cutPos := (cut - i + n) % n
		if cutPos >= de {
			east = append(east, d)
		} else {
			west = append(west, d)
		}
	}
	mask := ^pcie.Addr(p.windowSize - 1)
	var rules []peach2.RouteRule
	for _, r := range idRanges(east) {
		rules = append(rules, peach2.RouteRule{Mask: mask, Lower: p.NodeWindow(r[0]).Base, Upper: p.NodeWindow(r[1]).Base, Out: peach2.PortE})
	}
	for _, r := range idRanges(west) {
		rules = append(rules, peach2.RouteRule{Mask: mask, Lower: p.NodeWindow(r[0]).Base, Upper: p.NodeWindow(r[1]).Base, Out: peach2.PortW})
	}
	if len(rules) > peach2.MaxRouteRules {
		panic(fmt.Sprintf("tcanet: avoidance rules for node %d exceed the register file (%d)", i, len(rules)))
	}
	return rules
}

// RerouteAvoidingCut reprograms every chip in the sub-cluster to avoid the
// eastward cable out of node cut — the management-plane response to a dead
// link. Traffic already queued on the dead link is not recalled (posted
// writes in flight on a dead cable are lost in reality too); new traffic
// takes the surviving arc.
func (sc *SubCluster) RerouteAvoidingCut(cut int) {
	for i := 0; i < len(sc.chips); i++ {
		sc.chips[i].SetRoutes(sc.plan.RingRoutesAvoiding(i, cut))
	}
}
