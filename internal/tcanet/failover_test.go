package tcanet

import (
	"testing"

	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
)

func TestRingRoutesAvoidingNeverUsesCutLink(t *testing.T) {
	// n=2 is the degenerate ring (the cut leaves exactly one cable); every
	// cut position also exercises cuts adjacent to the source on both sides.
	for _, n := range []int{2, 3, 4, 8, 16} {
		p := MustPlan(n)
		for cut := 0; cut < n; cut++ {
			rules := map[int][]peach2.RouteRule{}
			for i := 0; i < n; i++ {
				var err error
				rules[i], err = p.RingRoutesAvoiding(i, cut)
				if err != nil {
					t.Fatalf("n=%d cut=%d node=%d: %v", n, cut, i, err)
				}
			}
			next := func(i int, out peach2.PortID) int {
				switch out {
				case peach2.PortE:
					if i == cut {
						t.Fatalf("n=%d cut=%d: node %d routed east across the cut", n, cut, i)
					}
					return (i + 1) % n
				case peach2.PortW:
					if (i-1+n)%n == cut {
						t.Fatalf("n=%d cut=%d: node %d routed west across the cut", n, cut, i)
					}
					return (i - 1 + n) % n
				default:
					t.Fatalf("unexpected egress %v", out)
					return -1
				}
			}
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					a := p.NodeWindow(dst).Base + 0x40
					hops := simulateRoute(p, rules, src, a, next)
					if hops < 0 {
						t.Fatalf("n=%d cut=%d: %d→%d unroutable", n, cut, src, dst)
					}
					// On a line, the hop count is the distance along
					// the surviving arc.
					de := (dst - src + n) % n
					cutPos := (cut - src + n) % n
					want := de
					if cutPos < de {
						want = n - de
					}
					if hops != want {
						t.Fatalf("n=%d cut=%d: %d→%d took %d hops, want %d", n, cut, src, dst, hops, want)
					}
				}
			}
		}
	}
}

func TestRerouteAvoidingCutKeepsTrafficFlowing(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildRing(eng, 4, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	// Before the cut, node0 → node1 goes east over link 0→1.
	before := sc.Chip(0).Stats().Forwarded[peach2.PortE]
	// Management plane reroutes around a dead 0→1 cable.
	if err := sc.RerouteAvoidingCut(0); err != nil {
		t.Fatal(err)
	}
	buf, _ := sc.Node(1).AllocDMABuffer(64)
	dst, _ := sc.GlobalHostAddr(1, buf)
	sc.Node(0).Store(dst, []byte{7})
	eng.Run()
	got, _ := sc.Node(1).ReadLocal(buf, 1)
	if got[0] != 7 {
		t.Fatal("write did not arrive after reroute")
	}
	// It must have gone west the long way (0 →W 3 →W 2 →W 1), so node 0's
	// E counter did not move and intermediate chips forwarded westward.
	if sc.Chip(0).Stats().Forwarded[peach2.PortE] != before {
		t.Fatal("traffic still used the dead eastward cable")
	}
	if sc.Chip(3).Stats().Forwarded[peach2.PortW] == 0 || sc.Chip(2).Stats().Forwarded[peach2.PortW] == 0 {
		t.Fatal("long-way path not taken")
	}
	// The host-chip links were never affected (§V): another local DMA
	// still works.
	if !sc.Chip(0).Port(peach2.PortN).Connected() {
		t.Fatal("host link lost")
	}
}

func TestReconfigurePortS(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildRing(eng, 2, DefaultParams) // ring leaves S disconnected
	if err != nil {
		t.Fatal(err)
	}
	chip := sc.Chip(0)
	if chip.Port(peach2.PortS).Role() != pcie.RoleEP {
		t.Fatal("S should default to EP")
	}
	var at sim.Time
	if err := chip.ReconfigurePortS(pcie.RoleRC, func(now sim.Time) { at = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if chip.Port(peach2.PortS).Role() != pcie.RoleRC {
		t.Fatal("role did not switch")
	}
	if at < sim.Time(peach2.PartialReconfigTime) {
		t.Fatalf("reconfiguration completed at %v — partial-reconfig time missing", at)
	}
	// The NIOS log records the event.
	found := false
	for _, e := range chip.NIOS().Events() {
		if e.What == "port S reconfigured to RC" {
			found = true
		}
	}
	if !found {
		t.Fatal("NIOS log missing the reconfiguration event")
	}
	// And the reconfigured port can now be cabled as RC.
	peer := sc.Chip(1)
	if _, err := pcie.Connect(eng, chip.Port(peach2.PortS), peer.Port(peach2.PortS), pcie.LinkParams{Config: pcie.Gen2x8}); err != nil {
		t.Fatalf("post-reconfiguration connect failed: %v", err)
	}
}

func TestReconfigurePortSRejectsConnectedPort(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildDualRing(eng, 2, DefaultParams) // S ports in use
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Chip(0).ReconfigurePortS(pcie.RoleEP, nil); err == nil {
		t.Fatal("reconfiguration of a connected Port S accepted")
	}
}
