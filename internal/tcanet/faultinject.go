package tcanet

import (
	"fmt"

	"tca/internal/fault"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/units"
)

// Fault wiring: InjectFaults layers a data-link layer (LCRC, ACK/NAK,
// bounded replay) over every ring cable and hands the shared injector to
// every chip and host, making the fabric vulnerable to the injector's
// schedule; EnableAutoFailover closes the loop by letting each NIOS
// reprogram routes when a cable dies. Both are opt-in: an un-injected
// sub-cluster schedules exactly the same events as before and its runs
// stay byte-identical to the perfect-fabric baselines.

// RingCableName names the eastward cable out of node i — the link between
// chip i's Port E and chip i+1's Port W — as scenario specs spell it
// ("linkdown:2e:50us" cuts cable "2e").
func RingCableName(i int) string { return fmt.Sprintf("%de", i) }

// SCableName names the Port-S coupling cable between dual-ring peers i and
// i+k.
func SCableName(i int) string { return fmt.Sprintf("%ds", i) }

// InjectFaults attaches inj to every chip and host and enables the
// data-link layer on every external cable (E/W ring links and, in a dual
// ring, the S couplings), so the injector's BER/drop/corrupt/link-down
// schedule applies to them. Ring cables are named with RingCableName, S
// cables with SCableName. Each cable end's replay-exhaustion death is wired
// to the owning chip's LinkDead, which parks traffic and alerts the NIOS.
// Call once, after construction and before traffic.
func (sc *SubCluster) InjectFaults(inj *fault.Injector, dll pcie.DLLParams) {
	if sc.inj != nil {
		panic("tcanet: InjectFaults called twice")
	}
	if inj == nil {
		panic("tcanet: InjectFaults with a nil injector (build one with fault.New)")
	}
	sc.inj = inj
	sc.cutDone = make(map[int]bool)
	for _, n := range sc.nodes {
		n.AttachFaults(inj)
	}
	for i, c := range sc.chips {
		c.AttachFaults(inj)
		// Name each cable after the chip on its fixed-EP side: chip i's E
		// port owns ring cable "ie"; chip i (i < k) owns S cable "is".
		if p := c.Port(peach2.PortE); p.Connected() {
			p.Link().EnableDLL(RingCableName(i), inj, dll)
		}
		if p := c.Port(peach2.PortS); sc.dualRing && i < sc.ringSize && p.Connected() {
			p.Link().EnableDLL(SCableName(i), inj, dll)
		}
	}
	// Dead handlers go on both ends of every DLL link: the E side reports
	// to the east chip, the W/S side to its own chip.
	for _, c := range sc.chips {
		for _, id := range []peach2.PortID{peach2.PortE, peach2.PortW, peach2.PortS} {
			p := c.Port(id)
			if !p.Connected() || p.Link().DLLName() == "" {
				continue
			}
			chip, port := c, id
			p.Link().SetDeadHandler(p, func(now sim.Time, salvaged []*pcie.TLP) {
				chip.LinkDead(now, port, salvaged)
			})
		}
	}
}

// EnableAutoFailover arms every NIOS to reroute around a cable that dies
// mid-run: when a chip's data-link layer exhausts its replay budget, the
// controller maps the dead port to the cut ring link, reprograms the
// affected ring with RerouteAvoidingCut, and the chips re-inject their
// parked traffic along the surviving arc. A positive scanInterval also
// starts each NIOS's periodic link scan (0 skips it — the dead-link fast
// path alone drives failover). Requires InjectFaults first.
func (sc *SubCluster) EnableAutoFailover(scanInterval units.Duration) {
	if sc.inj == nil {
		panic("tcanet: EnableAutoFailover before InjectFaults")
	}
	for i, c := range sc.chips {
		idx := i
		c.NIOS().SetDeadLinkHandler(func(now sim.Time, port peach2.PortID) {
			sc.failOver(now, idx, port)
		})
		if scanInterval > 0 {
			c.NIOS().Start(scanInterval)
		}
	}
}

// failOver is the management-plane reaction to chip chipIdx losing the
// cable on port: identify the cut ring link, reroute its ring once (both
// ends of a cable report the same cut; the second report is a no-op), and
// count the outcome.
func (sc *SubCluster) failOver(now sim.Time, chipIdx int, port peach2.PortID) {
	k := sc.ringSize
	base := chipIdx / k * k
	local := chipIdx - base
	var cut int
	switch port {
	case peach2.PortE:
		cut = chipIdx
	case peach2.PortW:
		cut = base + (local-1+k)%k
	default:
		// A dead S coupling has no redundant path in the Fig. 2 topology;
		// inter-ring traffic is left to the host/IB fallback.
		sc.chips[chipIdx].NIOS().NoteFailoverAbort(
			fmt.Errorf("tcanet: no alternate route for dead port %v", port))
		return
	}
	if sc.cutDone[cut] {
		return
	}
	sc.cutDone[cut] = true
	if err := sc.RerouteAvoidingCut(cut); err != nil {
		sc.chips[chipIdx].NIOS().NoteFailoverAbort(err)
		return
	}
	sc.inj.NoteFailover()
	sc.chips[chipIdx].NIOS().NoteFailover(cut)
}
