package tcanet

import (
	"errors"
	"testing"

	"tca/internal/fault"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/units"
)

func TestDualRingRerouteKeepsSCoupling(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildDualRing(eng, 3, DefaultParams) // nodes 0-2 ring A, 3-5 ring B
	if err != nil {
		t.Fatal(err)
	}
	ringBBefore := make([][]peach2.RouteRule, 3)
	for i := 3; i < 6; i++ {
		ringBBefore[i-3] = sc.Chip(i).Routes()
	}
	// Cut cable 1→2 in ring A.
	if err := sc.RerouteAvoidingCut(1); err != nil {
		t.Fatal(err)
	}
	// Every ring-A chip must keep a Port-S rule (the inter-ring coupling)
	// alongside the rewritten E/W arc rules.
	for i := 0; i < 3; i++ {
		hasS := false
		for _, r := range sc.Chip(i).Routes() {
			if r.Out == peach2.PortS {
				hasS = true
			}
		}
		if !hasS {
			t.Fatalf("chip %d lost its Port-S coupling rule after reroute", i)
		}
	}
	// Ring B was not touched.
	for i := 3; i < 6; i++ {
		after := sc.Chip(i).Routes()
		if len(after) != len(ringBBefore[i-3]) {
			t.Fatalf("chip %d in the healthy ring was reprogrammed", i)
		}
		for j := range after {
			if after[j] != ringBBefore[i-3][j] {
				t.Fatalf("chip %d rule %d changed in the healthy ring", i, j)
			}
		}
	}
	// Intra-ring traffic around the cut: 0→2 must go west now.
	buf2, _ := sc.Node(2).AllocDMABuffer(64)
	dst2, _ := sc.GlobalHostAddr(2, buf2)
	sc.Node(0).Store(dst2, []byte{11})
	// Cross-ring traffic still crosses S: 0→4.
	buf4, _ := sc.Node(4).AllocDMABuffer(64)
	dst4, _ := sc.GlobalHostAddr(4, buf4)
	sc.Node(0).Store(dst4, []byte{22})
	eng.Run()
	if got, _ := sc.Node(2).ReadLocal(buf2, 1); got[0] != 11 {
		t.Fatal("intra-ring write did not arrive after reroute")
	}
	if got, _ := sc.Node(4).ReadLocal(buf4, 1); got[0] != 22 {
		t.Fatal("cross-ring write did not cross the S coupling after reroute")
	}
	if sc.Chip(1).Stats().Forwarded[peach2.PortE] != 0 {
		t.Fatal("traffic crossed the cut cable")
	}
}

func TestRingRoutesAvoidingOverflowReturnsTaggedError(t *testing.T) {
	// A dual-ring chip carries one S rule plus the avoidance arcs; shrink
	// the budget artificially by passing many extra rules so the register
	// file overflows, and check the error is tagged for the NIOS to match.
	p := MustPlan(16)
	extra := make([]peach2.RouteRule, peach2.MaxRouteRules)
	_, err := p.ringRoutesAvoidingIn(0, 16, 3, 7, extra)
	if err == nil {
		t.Fatal("overflowing rule set accepted")
	}
	if !errors.Is(err, ErrRouteRulesOverflow) {
		t.Fatalf("error %v is not tagged ErrRouteRulesOverflow", err)
	}
}

// TestLiveFailover is the headline resilience scenario: traffic is already
// flowing when a ring cable dies mid-run; the DLL exhausts its replay
// budget, the NIOS fast path fires, the ring degrades to a line, and every
// payload — including TLPs parked on the dead egress and TLPs salvaged from
// the dead DLL's replay buffer — arrives byte-identical via the long way.
func TestLiveFailover(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildRing(eng, 4, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	// Cable 1→2 dies permanently at 5 µs.
	prof, err := fault.ParseScenario("linkdown:1e:5us", 7)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(prof)
	sc.InjectFaults(inj, pcie.DefaultDLLParams())
	sc.EnableAutoFailover(0)

	// Node 0 streams one-byte writes to node 2 every 2 µs from t=0 to
	// t=38 µs, spanning before the cut, the replay/death window, and the
	// post-failover regime. 0→2 initially routes east through the doomed
	// cable.
	const writes = 20
	buf, err := sc.Node(2).AllocDMABuffer(writes)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := sc.GlobalHostAddr(2, buf)
	for i := 0; i < writes; i++ {
		i := i
		eng.At(sim.Time(0).Add(units.Duration(i)*2*units.Microsecond), func() {
			sc.Node(0).Store(base+pcie.Addr(i), []byte{byte(0x40 + i)})
		})
	}
	eng.Run()

	got, err := sc.Node(2).ReadLocal(buf, writes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		if got[i] != byte(0x40+i) {
			t.Fatalf("write %d: got %#x, want %#x (payload lost or corrupted across failover)", i, got[i], 0x40+i)
		}
	}
	c := inj.Counts()
	if c.Replays == 0 {
		t.Fatal("DLL never replayed — the cut was not exercised")
	}
	if c.LinkDown == 0 {
		t.Fatal("replay exhaustion never declared the link dead")
	}
	if c.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (both cable ends report the same cut)", c.Failovers)
	}
	if sc.Chip(1).NIOS().Failovers()+sc.Chip(2).NIOS().Failovers() != 1 {
		t.Fatal("no NIOS recorded the reroute")
	}
	// Post-failover, 0→2 goes the long way west; the dead cable's E
	// counter at chip 1 must stay below the write count.
	if sc.Chip(3).Stats().Forwarded[peach2.PortW] == 0 {
		t.Fatal("rerouted traffic never took the surviving western arc")
	}
}
