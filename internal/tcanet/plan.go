// Package tcanet assembles TCA sub-clusters: it owns the global PCIe
// address plan of Fig. 4 (one large aligned region split into per-node
// windows, each subdivided into GPU0/GPU1/host/PEACH2-internal blocks),
// computes the compare-only routing register settings of Fig. 5, and wires
// host nodes and PEACH2 chips into ring, dual-ring and loopback topologies.
package tcanet

import (
	"fmt"

	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/units"
)

// Fig. 4 constants: "PEACH2 reserves a relatively large address region
// (current implementation is 512 Gbytes)" set far above everything local.
const (
	// RegionBase is the bus address of the TCA global window. It is
	// aligned to its own size so routing can compare masked upper bits.
	RegionBase pcie.Addr = 0x80_0000_0000
	// RegionSize is the reserved window: 512 GiB.
	RegionSize uint64 = 512 << 30
	// BlocksPerNode is the per-node subdivision: GPU0, GPU1, host,
	// PEACH2 internal (Fig. 4).
	BlocksPerNode = 4
	// MaxNodes bounds a sub-cluster ("the basic unit is the sub-cluster,
	// which consists of eight to 16 nodes", §II-B).
	MaxNodes = 16
	// MinNodes allows the two-chip test rigs.
	MinNodes = 2
)

// Block indices within a node window, in address order.
const (
	BlockGPU0 = iota
	BlockGPU1
	BlockHost
	BlockInternal
)

// Plan is the sub-cluster's global address map. All windows are power-of-
// two sized and self-aligned, which is what lets every PEACH2 route by
// comparing masked upper address bits only (§III-E).
type Plan struct {
	nodes      int
	windowSize uint64
	blockSize  uint64
}

// NewPlan splits the region for n nodes.
func NewPlan(n int) (Plan, error) {
	if n < MinNodes || n > MaxNodes {
		return Plan{}, fmt.Errorf("tcanet: %d nodes outside [%d, %d]", n, MinNodes, MaxNodes)
	}
	pow2 := 1
	for pow2 < n {
		pow2 *= 2
	}
	w := RegionSize / uint64(pow2)
	return Plan{nodes: n, windowSize: w, blockSize: w / BlocksPerNode}, nil
}

// MustPlan is NewPlan for static configurations.
func MustPlan(n int) Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(fmt.Sprintf("tcanet: MustPlan(%d): %v", n, err))
	}
	return p
}

// Nodes reports the sub-cluster size.
func (p Plan) Nodes() int { return p.nodes }

// Region returns the whole TCA window.
func (p Plan) Region() pcie.Range {
	return pcie.Range{Base: RegionBase, Size: RegionSize}
}

// WindowSize reports the per-node window size.
func (p Plan) WindowSize() units.ByteSize { return units.ByteSize(p.windowSize) }

// BlockSize reports the per-device block size.
func (p Plan) BlockSize() units.ByteSize { return units.ByteSize(p.blockSize) }

func (p Plan) checkNode(i int) {
	if i < 0 || i >= p.nodes {
		panic(fmt.Sprintf("tcanet: node %d outside plan of %d", i, p.nodes))
	}
}

// NodeWindow returns node i's slice of the region.
func (p Plan) NodeWindow(i int) pcie.Range {
	p.checkNode(i)
	return pcie.Range{Base: RegionBase + pcie.Addr(uint64(i)*p.windowSize), Size: p.windowSize}
}

// Block returns block b (BlockGPU0..BlockInternal) of node i.
func (p Plan) Block(i, b int) pcie.Range {
	p.checkNode(i)
	if b < 0 || b >= BlocksPerNode {
		panic(fmt.Sprintf("tcanet: block %d out of range", b))
	}
	w := p.NodeWindow(i)
	return pcie.Range{Base: w.Base + pcie.Addr(uint64(b)*p.blockSize), Size: p.blockSize}
}

// GPUBlock returns the global window of node i's GPU g (0 or 1 — PEACH2
// reaches only the two same-socket GPUs, §III-C).
func (p Plan) GPUBlock(i, g int) pcie.Range {
	if g < 0 || g > 1 {
		panic(fmt.Sprintf("tcanet: GPU %d not reachable by PEACH2 (only GPU0/GPU1)", g))
	}
	return p.Block(i, BlockGPU0+g)
}

// HostBlock returns the global window of node i's host memory.
func (p Plan) HostBlock(i int) pcie.Range { return p.Block(i, BlockHost) }

// InternalBlock returns the global window of node i's PEACH2-internal
// region (registers, ack word, packet buffer).
func (p Plan) InternalBlock(i int) pcie.Range { return p.Block(i, BlockInternal) }

// AckAddr returns the global address of node i's flush-ack word.
func (p Plan) AckAddr(i int) pcie.Addr {
	return p.InternalBlock(i).Base + pcie.Addr(peach2.AckOffset)
}

// NodeOf reports which node's window contains a.
func (p Plan) NodeOf(a pcie.Addr) (int, bool) {
	if !p.Region().Contains(a) {
		return 0, false
	}
	i := int(uint64(a-RegionBase) / p.windowSize)
	if i >= p.nodes {
		return 0, false // inside the region but past the last node
	}
	return i, true
}

// ClassOf labels a global address with its device block — the uniform
// split of Fig. 4 makes this a pure shift, no table.
func (p Plan) ClassOf(a pcie.Addr) (peach2.BlockClass, bool) {
	if _, ok := p.NodeOf(a); !ok {
		return 0, false
	}
	switch uint64(a-RegionBase) % p.windowSize / p.blockSize {
	case BlockGPU0, BlockGPU1:
		return peach2.ClassGPU, true
	case BlockHost:
		return peach2.ClassHost, true
	default:
		return peach2.ClassInternal, true
	}
}

// RingRoutes computes node i's Fig. 5 routing registers for an n-node
// ring: every other node's window routes out E or W along the shorter arc
// (ties go east). Because windows are laid out in node order, each
// direction covers at most two contiguous address ranges, so at most four
// rules are needed — comfortably inside the eight register sets.
func (p Plan) RingRoutes(i int) []peach2.RouteRule {
	p.checkNode(i)
	n := p.nodes
	var east, west []int
	for d := 0; d < n; d++ {
		if d == i {
			continue
		}
		de := (d - i + n) % n
		dw := (i - d + n) % n
		if de <= dw {
			east = append(east, d)
		} else {
			west = append(west, d)
		}
	}
	mask := ^pcie.Addr(p.windowSize - 1)
	var rules []peach2.RouteRule
	for _, r := range idRanges(east) {
		rules = append(rules, peach2.RouteRule{
			Mask:  mask,
			Lower: p.NodeWindow(r[0]).Base,
			Upper: p.NodeWindow(r[1]).Base,
			Out:   peach2.PortE,
		})
	}
	for _, r := range idRanges(west) {
		rules = append(rules, peach2.RouteRule{
			Mask:  mask,
			Lower: p.NodeWindow(r[0]).Base,
			Upper: p.NodeWindow(r[1]).Base,
			Out:   peach2.PortW,
		})
	}
	return rules
}

// idRanges collapses a sorted id list into inclusive [first, last] runs.
func idRanges(ids []int) [][2]int {
	var runs [][2]int
	for _, id := range ids {
		if len(runs) > 0 && runs[len(runs)-1][1] == id-1 {
			runs[len(runs)-1][1] = id
			continue
		}
		runs = append(runs, [2]int{id, id})
	}
	return runs
}
