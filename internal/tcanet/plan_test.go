package tcanet

import (
	"testing"
	"testing/quick"

	"tca/internal/pcie"
	"tca/internal/peach2"
)

func TestNewPlanBounds(t *testing.T) {
	for _, bad := range []int{0, 1, 17, -3} {
		if _, err := NewPlan(bad); err == nil {
			t.Errorf("NewPlan(%d) succeeded", bad)
		}
	}
	for _, good := range []int{2, 4, 8, 15, 16} {
		if _, err := NewPlan(good); err != nil {
			t.Errorf("NewPlan(%d): %v", good, err)
		}
	}
}

func TestPlanWindowsAlignedDisjointOrdered(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 16} {
		p := MustPlan(n)
		region := p.Region()
		var prev pcie.Range
		for i := 0; i < n; i++ {
			w := p.NodeWindow(i)
			if !w.Aligned() {
				t.Fatalf("n=%d node %d window %v not self-aligned", n, i, w)
			}
			if !region.ContainsRange(w) {
				t.Fatalf("n=%d node %d window %v outside region", n, i, w)
			}
			if i > 0 {
				if w.Overlaps(prev) {
					t.Fatalf("n=%d windows %v and %v overlap", n, prev, w)
				}
				if w.Base < prev.End() {
					t.Fatalf("n=%d windows out of order", n)
				}
			}
			prev = w
		}
	}
}

func TestPlanBlocksPartitionWindow(t *testing.T) {
	p := MustPlan(4)
	for i := 0; i < 4; i++ {
		w := p.NodeWindow(i)
		var total uint64
		for b := 0; b < BlocksPerNode; b++ {
			blk := p.Block(i, b)
			if !blk.Aligned() {
				t.Fatalf("block %d/%d %v not aligned", i, b, blk)
			}
			if !w.ContainsRange(blk) {
				t.Fatalf("block %d/%d outside window", i, b)
			}
			total += blk.Size
		}
		if total != w.Size {
			t.Fatalf("blocks cover %d of %d", total, w.Size)
		}
	}
}

func TestPlanClassOf(t *testing.T) {
	p := MustPlan(4)
	cases := []struct {
		a    pcie.Addr
		want peach2.BlockClass
		ok   bool
	}{
		{p.GPUBlock(0, 0).Base, peach2.ClassGPU, true},
		{p.GPUBlock(2, 1).Base + 0x100, peach2.ClassGPU, true},
		{p.HostBlock(1).Base + 0x4000, peach2.ClassHost, true},
		{p.InternalBlock(3).Base, peach2.ClassInternal, true},
		{RegionBase - 1, 0, false},
		{0x1000, 0, false},
	}
	for _, c := range cases {
		got, ok := p.ClassOf(c.a)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ClassOf(%v) = (%v, %t), want (%v, %t)", c.a, got, ok, c.want, c.ok)
		}
	}
}

func TestPlanNodeOf(t *testing.T) {
	p := MustPlan(3) // 3 nodes in 4 power-of-two slots: slot 3 unmapped
	for i := 0; i < 3; i++ {
		w := p.NodeWindow(i)
		for _, a := range []pcie.Addr{w.Base, w.Base + pcie.Addr(w.Size/2), w.End() - 1} {
			got, ok := p.NodeOf(a)
			if !ok || got != i {
				t.Fatalf("NodeOf(%v) = (%d, %t), want (%d, true)", a, got, ok, i)
			}
		}
	}
	// The fourth slot exists in the region but belongs to no node.
	if _, ok := p.NodeOf(RegionBase + pcie.Addr(3*uint64(p.WindowSize()))); ok {
		t.Fatal("NodeOf resolved an unpopulated slot")
	}
}

func TestPlanAckAddrInsideInternalBlock(t *testing.T) {
	p := MustPlan(8)
	for i := 0; i < 8; i++ {
		if !p.InternalBlock(i).Contains(p.AckAddr(i)) {
			t.Fatalf("node %d ack addr outside its internal block", i)
		}
	}
}

func TestGPUBlockRejectsFarSocketGPUs(t *testing.T) {
	p := MustPlan(4)
	defer func() {
		if recover() == nil {
			t.Fatal("GPUBlock(_, 2) did not panic — PEACH2 reaches only GPU0/GPU1")
		}
	}()
	p.GPUBlock(0, 2)
}

// simulateRoute walks a packet from node src toward global address a using
// only each hop's Fig. 5 rules, mirroring Chip.route's order. It returns
// the hop count, or -1 on a routing failure/loop.
func simulateRoute(p Plan, rules map[int][]peach2.RouteRule, src int, a pcie.Addr, ringNext func(i int, out peach2.PortID) int) int {
	cur := src
	for hops := 0; hops <= p.Nodes()+2; hops++ {
		if p.NodeWindow(cur).Contains(a) {
			return hops
		}
		var out peach2.PortID = -1
		for _, r := range rules[cur] {
			if r.Matches(a) {
				out = r.Out
				break
			}
		}
		if out < 0 {
			return -1
		}
		cur = ringNext(cur, out)
	}
	return -1
}

func TestRingRoutesReachEveryNodeViaShortestArc(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16} {
		p := MustPlan(n)
		rules := map[int][]peach2.RouteRule{}
		for i := 0; i < n; i++ {
			rs := p.RingRoutes(i)
			if len(rs) > peach2.MaxRouteRules {
				t.Fatalf("n=%d node %d needs %d rules (> %d registers)", n, i, len(rs), peach2.MaxRouteRules)
			}
			rules[i] = rs
		}
		next := func(i int, out peach2.PortID) int {
			switch out {
			case peach2.PortE:
				return (i + 1) % n
			case peach2.PortW:
				return (i - 1 + n) % n
			default:
				t.Fatalf("unexpected egress %v on a plain ring", out)
				return -1
			}
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				a := p.NodeWindow(dst).Base + 0x1234
				hops := simulateRoute(p, rules, src, a, next)
				de := (dst - src + n) % n
				dw := (src - dst + n) % n
				want := de
				if dw < want {
					want = dw
				}
				if hops != want {
					t.Fatalf("n=%d route %d→%d took %d hops, want %d", n, src, dst, hops, want)
				}
			}
		}
	}
}

// Property: any address anywhere in a destination window routes identically
// to the window base (the compare-only router never looks at low bits).
func TestQuickRingRoutesIgnoreLowBits(t *testing.T) {
	p := MustPlan(8)
	rules := map[int][]peach2.RouteRule{}
	for i := 0; i < 8; i++ {
		rules[i] = p.RingRoutes(i)
	}
	f := func(src, dst uint8, off uint32) bool {
		s, d := int(src%8), int(dst%8)
		if s == d {
			return true
		}
		w := p.NodeWindow(d)
		a := w.Base + pcie.Addr(uint64(off)%w.Size)
		var outBase, outOff peach2.PortID = -1, -1
		for _, r := range rules[s] {
			if r.Matches(w.Base) {
				outBase = r.Out
				break
			}
		}
		for _, r := range rules[s] {
			if r.Matches(a) {
				outOff = r.Out
				break
			}
		}
		return outBase == outOff && outBase >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIdRanges(t *testing.T) {
	cases := []struct {
		in   []int
		want [][2]int
	}{
		{nil, nil},
		{[]int{3}, [][2]int{{3, 3}}},
		{[]int{1, 2, 3}, [][2]int{{1, 3}}},
		{[]int{0, 2, 3, 7}, [][2]int{{0, 0}, {2, 3}, {7, 7}}},
	}
	for _, c := range cases {
		got := idRanges(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("idRanges(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("idRanges(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
