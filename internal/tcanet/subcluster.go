package tcanet

import (
	"fmt"

	"tca/internal/fault"
	"tca/internal/host"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/units"
)

// Params configures sub-cluster construction.
type Params struct {
	// Host configures each node.
	Host host.Params
	// Chip configures each PEACH2.
	Chip peach2.Params
	// CableProp is the external PCIe cable's one-way latency ("the
	// length of the PCIe external cable is limited to several meters",
	// §II-B).
	CableProp units.Duration
	// HostLinkProp is the edge-connector link latency of Port N.
	HostLinkProp units.Duration
	// RingCredits sets the E/W/S link ingress depth in TLPs (0 =
	// pcie.DefaultCreditTLPs).
	RingCredits int
	// MaxPayload is the negotiated payload bound on every link (0 =
	// pcie.DefaultMaxPayload, the paper's 256 bytes).
	MaxPayload units.ByteSize
}

// DefaultParams builds HA-PACS/TCA-like sub-clusters.
var DefaultParams = Params{
	Host: host.DefaultParams,
	Chip: peach2.DefaultParams,
	// 90 ns covers the SerDes pair plus a ~3 m external cable; with the
	// router pipeline and host-side costs the loopback PIO latency lands
	// on the paper's 782 ns (§IV-B1).
	CableProp:    90 * units.Nanosecond,
	HostLinkProp: 5 * units.Nanosecond,
}

// SubCluster is a set of nodes whose PEACH2 chips share one global address
// space.
type SubCluster struct {
	eng   *sim.Engine
	plan  Plan
	prm   Params
	nodes []*host.Node
	chips []*peach2.Chip
	obs   *obsv.Set

	// ringSize is the number of chips per E/W ring (n for BuildRing, k for
	// BuildDualRing); dualRing marks the Port-S-coupled topology. Both
	// drive failover's ring-scoped rerouting.
	ringSize int
	dualRing bool

	// Fault plumbing (nil/empty on a perfect fabric): the injector wired by
	// InjectFaults and the set of ring links already failed over.
	inj     *fault.Injector
	cutDone map[int]bool
}

// Instrument attaches the whole sub-cluster to an observability set: every
// node, every chip (and DMAC), the Port-N host links, and the E/W/S ring
// links. Safe to call once after construction; the set is retained for
// Observability().
func (sc *SubCluster) Instrument(set *obsv.Set) {
	sc.obs = set
	for _, n := range sc.nodes {
		n.Instrument(set)
	}
	instrumentChips(set, sc.chips...)
}

// Observability returns the attached set, or nil when uninstrumented.
func (sc *SubCluster) Observability() *obsv.Set { return sc.obs }

// Profile registers every component of the sub-cluster — nodes (and their
// switches), chips (and their DMACs), and links — with an engine profiler,
// so host wall-clock attributes to the component whose handler consumed it.
// Safe with a nil profiler; component naming mirrors Instrument.
func (sc *SubCluster) Profile(p *prof.Profiler) {
	for _, n := range sc.nodes {
		n.Profile(p)
	}
	profileChips(p, sc.chips...)
}

// StartTelemetry begins periodic sampling of every probe the instrumented
// components registered (link utilization, DMAC busy fraction, port byte
// rates, outstanding reads, queue depths) at the given sim-time interval.
// The sampler stops itself when the event queue drains; call again to
// sample a later phase. Panics if the sub-cluster was never instrumented.
func (sc *SubCluster) StartTelemetry(interval units.Duration) {
	if sc.obs == nil {
		panic("tcanet: StartTelemetry on an uninstrumented sub-cluster (call Instrument first)")
	}
	sc.obs.Sampler().Start(sc.eng, interval)
}

// instrumentChips wires chips and their connected links into a set, naming
// each link after the first chip-side port that reaches it
// ("link:peach2-0.E").
func instrumentChips(set *obsv.Set, chips ...*peach2.Chip) {
	seen := make(map[*pcie.Link]bool)
	for _, c := range chips {
		c.Instrument(set)
		for _, id := range []peach2.PortID{peach2.PortN, peach2.PortE, peach2.PortW, peach2.PortS} {
			p := c.Port(id)
			if !p.Connected() || seen[p.Link()] {
				continue
			}
			seen[p.Link()] = true
			p.Link().Instrument(set, fmt.Sprintf("link:%s.%s", c.DevName(), p.Label))
		}
	}
}

// profileChips registers chips and their connected links with a profiler,
// using the same link-naming rule as instrumentChips so profiler rows line
// up with metric labels ("link:peach2-0.E").
func profileChips(p *prof.Profiler, chips ...*peach2.Chip) {
	seen := make(map[*pcie.Link]bool)
	for _, c := range chips {
		c.Profile(p)
		for _, id := range []peach2.PortID{peach2.PortN, peach2.PortE, peach2.PortW, peach2.PortS} {
			pt := c.Port(id)
			if !pt.Connected() || seen[pt.Link()] {
				continue
			}
			seen[pt.Link()] = true
			pt.Link().Profile(p, fmt.Sprintf("link:%s.%s", c.DevName(), pt.Label))
		}
	}
}

// BuildRing constructs an n-node sub-cluster with Ports E and W forming a
// ring (§III-D) and shortest-arc routing programmed into every chip.
func BuildRing(eng *sim.Engine, n int, prm Params) (*SubCluster, error) {
	sc, err := buildNodes(eng, n, prm)
	if err != nil {
		return nil, err
	}
	// "Ports E and W are expected to form the ring topology by
	// connecting to each other": node i's E (fixed EP) cables to node
	// i+1's W (fixed RC).
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		pcie.MustConnect(eng, sc.chips[i].Port(peach2.PortE), sc.chips[next].Port(peach2.PortW),
			sc.ringLinkParams())
	}
	for i := 0; i < n; i++ {
		sc.chips[i].SetRoutes(sc.plan.RingRoutes(i))
	}
	sc.ringSize = n
	return sc, nil
}

// BuildDualRing constructs a 2k-node sub-cluster as two k-node rings whose
// matching nodes are coupled by Port S ("Port S ... is used to combine two
// rings by connecting to Port S on the peer node", §III-D). Nodes 0..k-1
// form ring A with S as RC; nodes k..2k-1 form ring B with S as EP.
func BuildDualRing(eng *sim.Engine, k int, prm Params) (*SubCluster, error) {
	if k < 2 {
		return nil, fmt.Errorf("tcanet: dual ring needs k >= 2 per ring, got %d", k)
	}
	n := 2 * k
	sc, err := buildNodes(eng, n, prm)
	if err != nil {
		return nil, err
	}
	for r := 0; r < 2; r++ {
		base := r * k
		for i := 0; i < k; i++ {
			next := base + (i+1)%k
			pcie.MustConnect(eng, sc.chips[base+i].Port(peach2.PortE), sc.chips[next].Port(peach2.PortW),
				sc.ringLinkParams())
		}
	}
	// Couple peers i <-> i+k through S. The port's role is
	// reconfigurable before link-up ("different configuration images for
	// the FPGA are prepared for switching the role of Port S").
	for i := 0; i < k; i++ {
		a := sc.chips[i].Port(peach2.PortS)
		b := sc.chips[i+k].Port(peach2.PortS)
		a.SetRole(pcie.RoleRC)
		pcie.MustConnect(eng, a, b, sc.ringLinkParams())
	}
	// Routing: own-ring destinations take the shorter E/W arc; the other
	// ring is one masked-range rule out of S.
	for i := 0; i < n; i++ {
		ring := i / k
		var rules []peach2.RouteRule
		mask := ^pcie.Addr(sc.plan.windowSize - 1)
		otherBase := (1 - ring) * k
		rules = append(rules, peach2.RouteRule{
			Mask:  mask,
			Lower: sc.plan.NodeWindow(otherBase).Base,
			Upper: sc.plan.NodeWindow(otherBase + k - 1).Base,
			Out:   peach2.PortS,
		})
		rules = append(rules, sc.ringArcRoutes(i, ring*k, k)...)
		sc.chips[i].SetRoutes(rules)
	}
	sc.ringSize = k
	sc.dualRing = true
	return sc, nil
}

// ringArcRoutes computes shortest-arc E/W rules for node i within the ring
// covering nodes [base, base+k).
func (sc *SubCluster) ringArcRoutes(i, base, k int) []peach2.RouteRule {
	local := i - base
	var east, west []int
	for d := 0; d < k; d++ {
		if d == local {
			continue
		}
		de := (d - local + k) % k
		dw := (local - d + k) % k
		if de <= dw {
			east = append(east, base+d)
		} else {
			west = append(west, base+d)
		}
	}
	mask := ^pcie.Addr(sc.plan.windowSize - 1)
	var rules []peach2.RouteRule
	for _, r := range idRanges(east) {
		rules = append(rules, peach2.RouteRule{Mask: mask, Lower: sc.plan.NodeWindow(r[0]).Base, Upper: sc.plan.NodeWindow(r[1]).Base, Out: peach2.PortE})
	}
	for _, r := range idRanges(west) {
		rules = append(rules, peach2.RouteRule{Mask: mask, Lower: sc.plan.NodeWindow(r[0]).Base, Upper: sc.plan.NodeWindow(r[1]).Base, Out: peach2.PortW})
	}
	return rules
}

func (sc *SubCluster) ringLinkParams() pcie.LinkParams {
	return pcie.LinkParams{
		Config:      sc.prm.Chip.LinkConfig,
		Propagation: sc.prm.CableProp,
		CreditTLPs:  sc.prm.RingCredits,
		MaxPayload:  sc.prm.MaxPayload,
	}
}

// buildNodes creates the nodes and chips and attaches each chip to its
// host, without ring cabling.
func buildNodes(eng *sim.Engine, n int, prm Params) (*SubCluster, error) {
	plan, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	sc := &SubCluster{eng: eng, plan: plan, prm: prm}
	hostPrm := prm.Host
	if prm.MaxPayload != 0 {
		hostPrm.MaxPayload = prm.MaxPayload
	}
	idToNode := make(map[pcie.DeviceID]int, n)
	for i := 0; i < n; i++ {
		node := host.NewNode(eng, i, hostPrm)
		chip := peach2.New(eng, fmt.Sprintf("peach2-%d", i), node.AllocDeviceID(),
			prm.Chip, sc.nodePlan(plan, i, node, idToNode))
		idToNode[chip.ID()] = i
		// The PEACH2 board sits in a socket-0 slot; its BAR is the
		// whole TCA region, so every store into the global space
		// routes to the chip (§III-E and footnote 2).
		if err := node.AttachDevice(0, "peach2", plan.Region(), chip.Port(peach2.PortN),
			pcie.LinkParams{Config: prm.Chip.LinkConfig, Propagation: prm.HostLinkProp, MaxPayload: prm.MaxPayload}); err != nil {
			return nil, err
		}
		sc.nodes = append(sc.nodes, node)
		sc.chips = append(sc.chips, chip)
	}
	return sc, nil
}

// nodePlan builds chip i's slice of the plan, including the Port-N
// conversion table: GPU blocks map onto the two same-socket GPUs' BAR1
// windows, the host block maps onto DRAM from bus address 0.
func (sc *SubCluster) nodePlan(plan Plan, i int, node *host.Node, idToNode map[pcie.DeviceID]int) peach2.NodePlan {
	conv := []peach2.ConvEntry{
		{Global: plan.GPUBlock(i, 0), Local: node.GPU(0).BAR1Window().Base, Class: peach2.ClassGPU},
		{Global: plan.GPUBlock(i, 1), Local: node.GPU(1).BAR1Window().Base, Class: peach2.ClassGPU},
		{Global: plan.HostBlock(i), Local: 0, Class: peach2.ClassHost},
	}
	return peach2.NodePlan{
		NodeID:       i,
		GlobalWindow: plan.NodeWindow(i),
		TCARegion:    plan.Region(),
		Internal:     plan.InternalBlock(i),
		Conv:         conv,
		AckAddrOf:    plan.AckAddr,
		NodeOfRequester: func(id pcie.DeviceID) (int, bool) {
			n, ok := idToNode[id]
			return n, ok
		},
		ClassOf: plan.ClassOf,
	}
}

// Engine returns the simulation engine.
func (sc *SubCluster) Engine() *sim.Engine { return sc.eng }

// Plan returns the address plan.
func (sc *SubCluster) Plan() Plan { return sc.plan }

// Nodes reports the sub-cluster size.
func (sc *SubCluster) Nodes() int { return len(sc.nodes) }

// Node returns node i.
func (sc *SubCluster) Node(i int) *host.Node { return sc.nodes[i] }

// Chip returns node i's PEACH2.
func (sc *SubCluster) Chip(i int) *peach2.Chip { return sc.chips[i] }

// GlobalHostAddr translates node i's local host bus address into the
// global space (valid for addresses inside the host block's reach).
func (sc *SubCluster) GlobalHostAddr(i int, bus pcie.Addr) (pcie.Addr, error) {
	if uint64(bus) >= sc.plan.blockSize {
		return 0, fmt.Errorf("tcanet: host bus address %v beyond the %v host block", bus, sc.plan.BlockSize())
	}
	return sc.plan.HostBlock(i).Base + bus, nil
}

// GlobalGPUAddr translates a pinned local BAR1 address on node i's GPU g
// into the global space.
func (sc *SubCluster) GlobalGPUAddr(i, g int, bus pcie.Addr) (pcie.Addr, error) {
	if g < 0 || g > 1 {
		return 0, fmt.Errorf("tcanet: GPU %d not in the TCA map (PEACH2 reaches GPU0/GPU1 only, §III-C)", g)
	}
	w := sc.nodes[i].GPU(g).BAR1Window()
	if !w.Contains(bus) {
		return 0, fmt.Errorf("tcanet: %v outside %s BAR1 %v", bus, sc.nodes[i].GPU(g).DevName(), w)
	}
	return sc.plan.GPUBlock(i, g).Base + (bus - w.Base), nil
}

// Loopback is the Fig. 10 measurement rig: two PEACH2 boards in one node,
// cabled E(A)→W(B), with a 2-node plan whose both windows resolve to the
// single host. The §IV-B1 latency experiment stores through chip A and
// polls host memory for chip B's write.
type Loopback struct {
	Node  *host.Node
	ChipA *peach2.Chip
	ChipB *peach2.Chip
	Plan  Plan
}

// Instrument attaches the loopback rig — its node, both chips, and all
// links — to an observability set.
func (lb *Loopback) Instrument(set *obsv.Set) {
	lb.Node.Instrument(set)
	instrumentChips(set, lb.ChipA, lb.ChipB)
}

// Profile registers the loopback rig's node, chips, and links with an
// engine profiler. Safe with a nil profiler.
func (lb *Loopback) Profile(p *prof.Profiler) {
	lb.Node.Profile(p)
	profileChips(p, lb.ChipA, lb.ChipB)
}

// BuildLoopback assembles the rig.
func BuildLoopback(eng *sim.Engine, prm Params) (*Loopback, error) {
	plan, err := NewPlan(2)
	if err != nil {
		return nil, err
	}
	hostPrm := prm.Host
	if prm.MaxPayload != 0 {
		hostPrm.MaxPayload = prm.MaxPayload
	}
	node := host.NewNode(eng, 0, hostPrm)
	idToNode := make(map[pcie.DeviceID]int, 2)
	mk := func(i int, gw pcie.Range) *peach2.Chip {
		conv := []peach2.ConvEntry{
			{Global: plan.GPUBlock(i, 0), Local: node.GPU(0).BAR1Window().Base, Class: peach2.ClassGPU},
			{Global: plan.GPUBlock(i, 1), Local: node.GPU(1).BAR1Window().Base, Class: peach2.ClassGPU},
			{Global: plan.HostBlock(i), Local: 0, Class: peach2.ClassHost},
		}
		chip := peach2.New(eng, fmt.Sprintf("peach2-%c", 'A'+i), node.AllocDeviceID(), prm.Chip, peach2.NodePlan{
			NodeID:       i,
			GlobalWindow: gw,
			TCARegion:    plan.Region(),
			Internal:     plan.InternalBlock(i),
			Conv:         conv,
			AckAddrOf:    plan.AckAddr,
			NodeOfRequester: func(id pcie.DeviceID) (int, bool) {
				n, ok := idToNode[id]
				return n, ok
			},
			ClassOf: plan.ClassOf,
		})
		idToNode[chip.ID()] = i
		return chip
	}
	chipA := mk(0, plan.NodeWindow(0))
	chipB := mk(1, plan.NodeWindow(1))
	// The host reaches "node 1" addresses through chip A's slot and
	// "node 0" addresses through chip B's — each board's switch window
	// is the other's node window, so a store into the peer window
	// enters the fabric and comes back through the cable (Fig. 10).
	if err := node.AttachDevice(0, "peach2-A", plan.NodeWindow(1), chipA.Port(peach2.PortN),
		pcie.LinkParams{Config: prm.Chip.LinkConfig, Propagation: prm.HostLinkProp, MaxPayload: prm.MaxPayload}); err != nil {
		return nil, err
	}
	if err := node.AttachDevice(0, "peach2-B", plan.NodeWindow(0), chipB.Port(peach2.PortN),
		pcie.LinkParams{Config: prm.Chip.LinkConfig, Propagation: prm.HostLinkProp, MaxPayload: prm.MaxPayload}); err != nil {
		return nil, err
	}
	pcie.MustConnect(eng, chipA.Port(peach2.PortE), chipB.Port(peach2.PortW), pcie.LinkParams{
		Config:      prm.Chip.LinkConfig,
		Propagation: prm.CableProp,
		CreditTLPs:  prm.RingCredits,
		MaxPayload:  prm.MaxPayload,
	})
	// Step 1 of the §IV-B1 procedure: "routing information is
	// appropriately set to the control register in PEACH2".
	mask := ^pcie.Addr(plan.windowSize - 1)
	chipA.SetRoutes([]peach2.RouteRule{{Mask: mask, Lower: plan.NodeWindow(1).Base, Upper: plan.NodeWindow(1).Base, Out: peach2.PortE}})
	chipB.SetRoutes([]peach2.RouteRule{{Mask: mask, Lower: plan.NodeWindow(0).Base, Upper: plan.NodeWindow(0).Base, Out: peach2.PortW}})
	return &Loopback{Node: node, ChipA: chipA, ChipB: chipB, Plan: plan}, nil
}
