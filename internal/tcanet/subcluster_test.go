package tcanet

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/units"
)

func buildRing(t *testing.T, n int) (*sim.Engine, *SubCluster) {
	t.Helper()
	eng := sim.NewEngine()
	sc, err := BuildRing(eng, n, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sc
}

func TestBuildRingTopology(t *testing.T) {
	_, sc := buildRing(t, 4)
	for i := 0; i < 4; i++ {
		chip := sc.Chip(i)
		if !chip.Port(peach2.PortN).Connected() {
			t.Fatalf("chip %d port N unconnected", i)
		}
		if !chip.Port(peach2.PortE).Connected() || !chip.Port(peach2.PortW).Connected() {
			t.Fatalf("chip %d ring ports unconnected", i)
		}
		if chip.Port(peach2.PortS).Connected() {
			t.Fatalf("chip %d port S connected on a plain ring", i)
		}
		next := sc.Chip((i + 1) % 4)
		if chip.Port(peach2.PortE).Peer() != next.Port(peach2.PortW) {
			t.Fatalf("chip %d E not cabled to chip %d W", i, (i+1)%4)
		}
	}
}

func TestPIOWriteToAdjacentNode(t *testing.T) {
	eng, sc := buildRing(t, 4)
	// Node 0's CPU stores into node 1's host block: the RDMA-put PIO of
	// §III-F1.
	dst, err := sc.GlobalHostAddr(1, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	sc.Node(0).Store(dst, []byte{0xAB, 0xCD})
	eng.Run()
	got, err := sc.Node(1).ReadLocal(0x8000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xAB, 0xCD}) {
		t.Fatalf("remote host memory holds %v", got)
	}
}

func TestPIOWriteMultiHop(t *testing.T) {
	eng, sc := buildRing(t, 8)
	// Node 0 → node 3: three hops eastward.
	dst, _ := sc.GlobalHostAddr(3, 0x100)
	sc.Node(0).Store(dst, []byte{9})
	eng.Run()
	got, _ := sc.Node(3).ReadLocal(0x100, 1)
	if got[0] != 9 {
		t.Fatal("multi-hop PIO did not land")
	}
	// The intermediate chips forwarded it; the endpoints' stats show it.
	if sc.Chip(1).Stats().Forwarded[peach2.PortE] != 1 || sc.Chip(2).Stats().Forwarded[peach2.PortE] != 1 {
		t.Fatal("intermediate chips did not forward eastward")
	}
	if sc.Chip(3).Stats().Forwarded[peach2.PortN] != 1 {
		t.Fatal("destination chip did not deliver to its host")
	}
}

func TestPIOWriteWestwardShortestPath(t *testing.T) {
	eng, sc := buildRing(t, 8)
	// Node 0 → node 7 is one hop west, not seven east.
	dst, _ := sc.GlobalHostAddr(7, 0x100)
	sc.Node(0).Store(dst, []byte{1})
	eng.Run()
	got, _ := sc.Node(7).ReadLocal(0x100, 1)
	if got[0] != 1 {
		t.Fatal("westward PIO did not land")
	}
	if sc.Chip(0).Stats().Forwarded[peach2.PortW] != 1 {
		t.Fatal("packet did not leave westward")
	}
	for i := 1; i < 7; i++ {
		st := sc.Chip(i).Stats()
		if st.Forwarded[peach2.PortE] != 0 && st.Forwarded[peach2.PortW] != 0 {
			t.Fatalf("chip %d forwarded on the long arc", i)
		}
	}
}

func TestPIOWriteToRemoteGPU(t *testing.T) {
	eng, sc := buildRing(t, 4)
	g := sc.Node(2).GPU(1)
	ptr, err := g.MemAlloc(64 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := g.PointerGetAttribute(ptr)
	bus, err := g.Pin(tok)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := sc.GlobalGPUAddr(2, 1, bus)
	if err != nil {
		t.Fatal(err)
	}
	sc.Node(0).Store(dst+8, []byte{1, 2, 3, 4})
	eng.Run()
	got, _ := g.Memory().ReadBytes(uint64(ptr)+8, 4)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("GPU memory holds %v — GPUDirect path broken", got)
	}
}

// driveDMA runs a descriptor chain on node src's chip through the real
// driver path: table in host memory, RegDMATable + RegDMACount stores, IRQ
// completion. It returns the completion time.
func driveDMA(t *testing.T, eng *sim.Engine, sc *SubCluster, src int, descs []peach2.Descriptor) sim.Time {
	t.Helper()
	node := sc.Node(src)
	chip := sc.Chip(src)
	table := peach2.EncodeTable(descs)
	buf, err := node.AllocDMABuffer(units.ByteSize(len(table)))
	if err != nil {
		t.Fatal(err)
	}
	if err := node.WriteLocal(buf, table); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	chip.SetIRQHandler(func(now sim.Time) { doneAt = now })
	regs := sc.Plan().InternalBlock(src).Base
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(buf))
	node.Store(regs+pcie.Addr(peach2.RegDMATable), b)
	c := make([]byte, 8)
	binary.LittleEndian.PutUint64(c, uint64(len(descs)))
	node.Store(regs+pcie.Addr(peach2.RegDMACount), c)
	eng.Run()
	if doneAt == 0 {
		t.Fatal("DMA chain never completed")
	}
	return doneAt
}

func TestDMAWriteLocalHost(t *testing.T) {
	eng, sc := buildRing(t, 2)
	// Fig. 7 shape: internal memory → local host buffer.
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	dst, _ := sc.Node(0).AllocDMABuffer(4 * units.KiB)
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: 4096, Src: 0, Dst: uint64(dst)},
	})
	got, _ := sc.Node(0).ReadLocal(dst, 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("local DMA write corrupted data")
	}
}

func TestDMAReadLocalHost(t *testing.T) {
	eng, sc := buildRing(t, 2)
	want := make([]byte, 2048)
	for i := range want {
		want[i] = byte(i ^ 0x5A)
	}
	src, _ := sc.Node(0).AllocDMABuffer(2 * units.KiB)
	if err := sc.Node(0).WriteLocal(src, want); err != nil {
		t.Fatal(err)
	}
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescRead, Len: 2048, Src: uint64(src), Dst: 0x100},
	})
	got, _ := sc.Chip(0).InternalMemory().ReadBytes(0x100, 2048)
	if !bytes.Equal(got, want) {
		t.Fatal("local DMA read corrupted data")
	}
}

func TestDMAWriteRemoteHost(t *testing.T) {
	eng, sc := buildRing(t, 4)
	want := make([]byte, 8192)
	for i := range want {
		want[i] = byte(i * 31)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := sc.Node(2).AllocDMABuffer(8 * units.KiB)
	dst, _ := sc.GlobalHostAddr(2, dstBuf)
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: 8192, Src: 0, Dst: uint64(dst)},
	})
	got, _ := sc.Node(2).ReadLocal(dstBuf, 8192)
	if !bytes.Equal(got, want) {
		t.Fatal("remote DMA write corrupted data")
	}
	// Remote host targets use the flush ack (§IV-B2 modelling).
	if sc.Chip(2).Stats().AcksSent != 1 {
		t.Fatalf("remote chip sent %d acks, want 1", sc.Chip(2).Stats().AcksSent)
	}
	if sc.Chip(0).Stats().AcksRecv != 1 {
		t.Fatalf("source chip received %d acks, want 1", sc.Chip(0).Stats().AcksRecv)
	}
}

func TestDMAWriteRemoteGPUNoFlush(t *testing.T) {
	eng, sc := buildRing(t, 2)
	g := sc.Node(1).GPU(0)
	ptr, _ := g.MemAlloc(64 * units.KiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	dst, _ := sc.GlobalGPUAddr(1, 0, bus)
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i + 7)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: 4096, Src: 0, Dst: uint64(dst)},
	})
	got, _ := g.Memory().ReadBytes(uint64(ptr), 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("remote GPU DMA corrupted data")
	}
	// Deep-queue GPU sinks complete without a flush ack.
	if sc.Chip(1).Stats().AcksSent != 0 {
		t.Fatal("GPU-targeted chain used a flush ack")
	}
}

func TestDMATwoPhaseRemoteTransfer(t *testing.T) {
	// §IV-B2: "two phase operations are required. As the first phase,
	// data must be stored in the internal memory by DMA read, and in the
	// second phase, data in the internal memory is written to the CPU or
	// GPU memory on the other node."
	eng, sc := buildRing(t, 2)
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(3 * i)
	}
	srcBuf, _ := sc.Node(0).AllocDMABuffer(4 * units.KiB)
	if err := sc.Node(0).WriteLocal(srcBuf, want); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := sc.Node(1).AllocDMABuffer(4 * units.KiB)
	dst, _ := sc.GlobalHostAddr(1, dstBuf)
	// Descriptors within one chain pipeline concurrently (hardware has no
	// dependency tracking), so the two phases are two DMA activations —
	// which is exactly why the paper calls the procedure's performance
	// impact serious and proposes the pipelined DMAC.
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescRead, Len: 4096, Src: uint64(srcBuf), Dst: 0},
	})
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: 4096, Src: 0, Dst: uint64(dst)},
	})
	got, _ := sc.Node(1).ReadLocal(dstBuf, 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("two-phase transfer corrupted data")
	}
}

func TestDMAPipelinedRemoteTransfer(t *testing.T) {
	// The paper's future-work DMAC: one descriptor, source read and
	// remote write overlapped.
	eng, sc := buildRing(t, 2)
	want := make([]byte, 16384)
	for i := range want {
		want[i] = byte(i * 5)
	}
	srcBuf, _ := sc.Node(0).AllocDMABuffer(16 * units.KiB)
	if err := sc.Node(0).WriteLocal(srcBuf, want); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := sc.Node(1).AllocDMABuffer(16 * units.KiB)
	dst, _ := sc.GlobalHostAddr(1, dstBuf)
	driveDMA(t, eng, sc, 0, []peach2.Descriptor{
		{Kind: peach2.DescPipelined, Len: 16384, Src: uint64(srcBuf), Dst: uint64(dst)},
	})
	got, _ := sc.Node(1).ReadLocal(dstBuf, 16384)
	if !bytes.Equal(got, want) {
		t.Fatal("pipelined transfer corrupted data")
	}
}

func TestDMAChainMultipleDescriptors(t *testing.T) {
	eng, sc := buildRing(t, 2)
	const count = 16
	const size = 1024
	want := make([]byte, count*size)
	for i := range want {
		want[i] = byte(i * 11)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, want); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := sc.Node(1).AllocDMABuffer(count * size)
	var descs []peach2.Descriptor
	for i := 0; i < count; i++ {
		dst, _ := sc.GlobalHostAddr(1, dstBuf+pcie.Addr(i*size))
		descs = append(descs, peach2.Descriptor{
			Kind: peach2.DescWrite, Len: size, Src: uint64(i * size), Dst: uint64(dst),
		})
	}
	driveDMA(t, eng, sc, 0, descs)
	got, _ := sc.Node(1).ReadLocal(dstBuf, count*size)
	if !bytes.Equal(got, want) {
		t.Fatal("chained transfer corrupted data")
	}
	if sc.Chip(0).DMAC().ChainsCompleted() != 1 {
		t.Fatal("chain counter wrong")
	}
}

func TestLoopbackPIOLatency(t *testing.T) {
	// §IV-B1 / Fig. 10: store through chip A, cable to chip B, B writes
	// host memory, the driver polls. Measured: "the transfer latency is
	// 782 nsec using the current FPGA logic implementation."
	eng := sim.NewEngine()
	lb, err := BuildLoopback(eng, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	flag, _ := lb.Node.AllocDMABuffer(64)
	dst := lb.Plan.HostBlock(0).Base + pcie.Addr(flag) // via A: routed E to B, B delivers to host
	var t0, t1 sim.Time
	lb.Node.Poll(pcie.Range{Base: flag, Size: 4}, func(now sim.Time) { t1 = now })
	t0 = eng.Now()
	lb.Node.Store(dst, []byte{1, 2, 3, 4})
	eng.Run()
	if t1 == 0 {
		t.Fatal("loopback write never observed")
	}
	lat := t1.Sub(t0)
	t.Logf("PIO loopback latency = %v", lat)
	if lat < 700*units.Nanosecond || lat > 900*units.Nanosecond {
		t.Fatalf("loopback latency %v outside the ~782ns class", lat)
	}
	got, _ := lb.Node.ReadLocal(flag, 4)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("loopback data corrupted")
	}
}

func TestDualRingRoutesAcrossS(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := BuildDualRing(eng, 4, DefaultParams) // 8 nodes: 0–3 ring A, 4–7 ring B
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 (ring A) writes node 5 (ring B): must cross an S coupling.
	dst, _ := sc.GlobalHostAddr(5, 0x2000)
	sc.Node(1).Store(dst, []byte{0x77})
	eng.Run()
	got, _ := sc.Node(5).ReadLocal(0x2000, 1)
	if got[0] != 0x77 {
		t.Fatal("cross-ring write did not land")
	}
	if sc.Chip(1).Stats().Forwarded[peach2.PortS] != 1 {
		t.Fatal("packet did not cross Port S at the source")
	}
	// And within-ring traffic still works on ring B.
	dst2, _ := sc.GlobalHostAddr(6, 0x3000)
	sc.Node(5).Store(dst2, []byte{0x55})
	eng.Run()
	got2, _ := sc.Node(6).ReadLocal(0x3000, 1)
	if got2[0] != 0x55 {
		t.Fatal("ring-B write did not land")
	}
}

func TestDualRingValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := BuildDualRing(eng, 1, DefaultParams); err == nil {
		t.Fatal("k=1 dual ring accepted")
	}
}

func TestGlobalAddrValidation(t *testing.T) {
	_, sc := buildRing(t, 2)
	if _, err := sc.GlobalHostAddr(0, pcie.Addr(sc.Plan().BlockSize())); err == nil {
		t.Fatal("host address beyond block accepted")
	}
	if _, err := sc.GlobalGPUAddr(0, 2, 0); err == nil {
		t.Fatal("GPU 2 accepted (unreachable from PEACH2)")
	}
	if _, err := sc.GlobalGPUAddr(0, 0, 0x1234); err == nil {
		t.Fatal("address outside BAR1 accepted")
	}
}

func TestNIOSOnLiveRing(t *testing.T) {
	eng, sc := buildRing(t, 2)
	sc.Chip(0).NIOS().Start(10 * units.Microsecond)
	dst, _ := sc.GlobalHostAddr(1, 0x100)
	sc.Node(0).Store(dst, []byte{1})
	eng.RunFor(50 * units.Microsecond)
	st := sc.Chip(0).NIOS().Status()
	if !st.PortUp[peach2.PortN] || !st.PortUp[peach2.PortE] || !st.PortUp[peach2.PortW] {
		t.Fatalf("ring ports down in NIOS status: %+v", st.PortUp)
	}
	if st.Forwarded[peach2.PortE] == 0 {
		t.Fatal("NIOS status missed forwarded traffic")
	}
}

// TestChipTracerRecordsPath verifies the logic-analyzer hook the tcaring
// tool builds on: a multi-hop packet leaves one trace event per chip.
func TestChipTracerRecordsPath(t *testing.T) {
	eng, sc := buildRing(t, 4)
	var events []string
	for i := 0; i < 4; i++ {
		name := sc.Chip(i).DevName()
		sc.Chip(i).SetTracer(func(now sim.Time, what string) {
			events = append(events, name+": "+what)
		})
	}
	dst, _ := sc.GlobalHostAddr(2, 0x100)
	sc.Node(0).Store(dst, []byte{1})
	eng.Run()
	if len(events) != 3 {
		t.Fatalf("trace has %d events, want 3 (two forwards + one convert): %v", len(events), events)
	}
	if !strings.Contains(events[0], "peach2-0") || !strings.Contains(events[2], "peach2-2") ||
		!strings.Contains(events[2], "convert") {
		t.Fatalf("trace path wrong: %v", events)
	}
	// Disabling the tracer stops recording.
	for i := 0; i < 4; i++ {
		sc.Chip(i).SetTracer(nil)
	}
	sc.Node(0).Store(dst, []byte{2})
	eng.Run()
	if len(events) != 3 {
		t.Fatal("tracer kept recording after being cleared")
	}
}
