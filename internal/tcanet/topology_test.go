package tcanet

import (
	"testing"

	"tca/internal/host"
	"tca/internal/ntb"
	"tca/internal/pcie"
	"tca/internal/sim"
)

// rcOf returns node i's root complex as the enumeration start.
func rcOf(sc *SubCluster, i int) pcie.Device {
	// The RC owns the socket switches' upstream peers.
	return sc.Node(i).Socket(0).Upstream().Peer().Owner()
}

// TestBIOSScanStopsAtPEACH2 is the §V enumeration contrast: a bus scan from
// one node's root complex discovers that node's own devices — including
// PEACH2 as an ordinary endpoint — but never crosses the ring into another
// node, so a neighbour's death cannot invalidate this host's device tree.
func TestBIOSScanStopsAtPEACH2(t *testing.T) {
	_, sc := buildRing(t, 4)
	devs := pcie.Enumerate(rcOf(sc, 0))
	names := map[string]bool{}
	for _, d := range devs {
		names[d.DevName()] = true
	}
	for _, want := range []string{"node0.rc", "node0.sock0", "node0.sock1",
		"node0.gpu0", "node0.gpu1", "node0.gpu2", "node0.gpu3", "peach2-0"} {
		if !names[want] {
			t.Fatalf("scan missed %s (found %v)", want, names)
		}
	}
	if len(devs) != 8 {
		t.Fatalf("scan found %d devices, want exactly 8 (no ring crossing)", len(devs))
	}
	for n := range names {
		if n == "peach2-1" || n == "node1.rc" {
			t.Fatalf("scan crossed the ring into %s", n)
		}
	}
}

// TestBIOSScanCrossesNTB shows the opposing behaviour: the bridge's
// endpoints belong to both fabrics, so a scan from host A walks into host
// B's entire tree — the lifetime coupling §V criticizes.
func TestBIOSScanCrossesNTB(t *testing.T) {
	eng := sim.NewEngine()
	a := host.NewNode(eng, 0, host.DefaultParams)
	b := host.NewNode(eng, 1, host.DefaultParams)
	br := ntb.New(eng, "ntb0", ntb.DefaultParams)
	win := pcie.Range{Base: 0x90_0000_0000, Size: 1 << 30}
	if err := a.AttachDevice(0, "ntb", win, br.Port(ntb.SideA), pcie.LinkParams{Config: pcie.Gen2x8}); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachDevice(0, "ntb", win, br.Port(ntb.SideB), pcie.LinkParams{Config: pcie.Gen2x8}); err != nil {
		t.Fatal(err)
	}
	start := a.Socket(0).Upstream().Peer().Owner()
	devs := pcie.Enumerate(start)
	crossed := false
	for _, d := range devs {
		if d.DevName() == "node1.rc" {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("NTB scan did not reach the peer host — the §V coupling should be visible")
	}
	// Both full trees: 2 × (rc + 2 switches + 4 GPUs) + bridge = 15.
	if len(devs) != 15 {
		t.Fatalf("scan found %d devices, want 15", len(devs))
	}
}

// TestValidateTreeAcceptsBuiltTopologies runs the structural validator over
// everything the builders produce.
func TestValidateTreeAcceptsBuiltTopologies(t *testing.T) {
	_, sc := buildRing(t, 8)
	for i := 0; i < 8; i++ {
		if err := pcie.ValidateTree(rcOf(sc, i)); err != nil {
			t.Fatalf("node %d tree invalid: %v", i, err)
		}
	}
	eng := sim.NewEngine()
	dual, err := BuildDualRing(eng, 3, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := pcie.ValidateTree(rcOf(dual, 0)); err != nil {
		t.Fatalf("dual-ring tree invalid: %v", err)
	}
}

// TestEnumerateDeterministic guards the name-sorted discovery order.
func TestEnumerateDeterministic(t *testing.T) {
	_, sc := buildRing(t, 2)
	a := pcie.Enumerate(rcOf(sc, 0))
	b := pcie.Enumerate(rcOf(sc, 0))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].DevName() != b[i].DevName() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].DevName(), b[i].DevName())
		}
	}
}
