// Package trace provides a bounded in-memory event log the hardware models
// can emit packet-level events into — what a logic analyzer on the PEACH2
// board would show.
//
// Deprecated: superseded by package obsv, whose typed span events carry
// transaction IDs end to end and reconstruct per-hop latency breakdowns
// (see tcatrace). This stringly-typed ring remains only for the legacy
// Chip.SetTracer hook; new instrumentation should use obsv.Recorder.
package trace

import (
	"fmt"
	"io"

	"tca/internal/sim"
)

// Event is one trace record.
type Event struct {
	At    sim.Time
	Where string
	What  string
}

// Ring is a bounded trace buffer. The zero value is unusable; call New.
type Ring struct {
	events []Event
	next   int
	full   bool
	total  uint64
}

// New creates a ring holding up to capacity events.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: capacity %d", capacity))
	}
	return &Ring{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (r *Ring) Record(at sim.Time, where, format string, args ...interface{}) {
	r.events[r.next] = Event{At: at, Where: where, What: fmt.Sprintf(format, args...)}
	r.next++
	r.total++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
}

// Len reports the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.events)
	}
	return r.next
}

// Total reports how many events were ever recorded.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the retained events to w, one per line.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintf(w, "%12v  %-14s %s\n", e.At, e.Where, e.What)
	}
}
