package trace

import (
	"strings"
	"testing"
)

func TestRingRecordsInOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(0, "chip", "event %d", i)
	}
	evs := r.Events()
	if len(evs) != 5 || r.Len() != 5 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	for i, e := range evs {
		if e.What != "event "+string(rune('0'+i)) {
			t.Fatalf("event %d = %q", i, e.What)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Record(0, "x", "e%d", i)
	}
	evs := r.Events()
	if len(evs) != 3 || r.Total() != 7 {
		t.Fatalf("len=%d total=%d", len(evs), r.Total())
	}
	if evs[0].What != "e4" || evs[2].What != "e6" {
		t.Fatalf("events = %v", evs)
	}
}

func TestRingDump(t *testing.T) {
	r := New(4)
	r.Record(1000, "peach2-0", "route MWr")
	var sb strings.Builder
	r.Dump(&sb)
	if !strings.Contains(sb.String(), "peach2-0") || !strings.Contains(sb.String(), "route MWr") {
		t.Fatalf("dump = %q", sb.String())
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
