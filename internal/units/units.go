// Package units provides byte-size, bandwidth and simulated-duration types
// shared by the whole simulator.
//
// The simulator measures time in picoseconds (see sim.Time); bandwidth math
// therefore stays exact for every realistic PCIe rate without floating-point
// drift inside the hot event loop.
package units

import (
	"fmt"
	"math"
)

// ByteSize is a number of bytes. It exists mainly for formatting: sizes print
// in the power-of-two units the paper uses (Kbytes, Mbytes, ...).
type ByteSize int64

// Power-of-two size units.
const (
	Byte ByteSize = 1
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
	GiB           = 1024 * MiB
	TiB           = 1024 * GiB
)

// String formats the size with a power-of-two suffix, e.g. "4KiB", "512GiB".
func (b ByteSize) String() string {
	neg := ""
	v := b
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= TiB && v%TiB == 0:
		return fmt.Sprintf("%s%dTiB", neg, v/TiB)
	case v >= GiB && v%GiB == 0:
		return fmt.Sprintf("%s%dGiB", neg, v/GiB)
	case v >= MiB && v%MiB == 0:
		return fmt.Sprintf("%s%dMiB", neg, v/MiB)
	case v >= KiB && v%KiB == 0:
		return fmt.Sprintf("%s%dKiB", neg, v/KiB)
	case v >= TiB:
		return fmt.Sprintf("%s%.2fTiB", neg, float64(v)/float64(TiB))
	case v >= GiB:
		return fmt.Sprintf("%s%.2fGiB", neg, float64(v)/float64(GiB))
	case v >= MiB:
		return fmt.Sprintf("%s%.2fMiB", neg, float64(v)/float64(MiB))
	case v >= KiB:
		return fmt.Sprintf("%s%.2fKiB", neg, float64(v)/float64(KiB))
	default:
		return fmt.Sprintf("%s%dB", neg, v)
	}
}

// Bytes reports the size as a floating-point byte count — the blessed
// escape hatch into float math for ratios and derived rates, enforced by
// the unittypes analyzer in place of raw float64 casts.
func (b ByteSize) Bytes() float64 { return float64(b) }

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// Decimal bandwidth units (the paper quotes PCIe rates in Gbytes/sec, i.e.
// powers of ten).
const (
	BytePerSec Bandwidth = 1
	KBPerSec             = 1e3 * BytePerSec
	MBPerSec             = 1e6 * BytePerSec
	GBPerSec             = 1e9 * BytePerSec
)

// String formats the bandwidth the way the paper's figures label their axes.
func (bw Bandwidth) String() string {
	switch {
	case bw >= GBPerSec:
		return fmt.Sprintf("%.3gGB/s", float64(bw)/1e9)
	case bw >= MBPerSec:
		return fmt.Sprintf("%.3gMB/s", float64(bw)/1e6)
	case bw >= KBPerSec:
		return fmt.Sprintf("%.3gKB/s", float64(bw)/1e3)
	default:
		return fmt.Sprintf("%.3gB/s", float64(bw))
	}
}

// BytesPerSec reports the rate as floating-point bytes per second — the
// blessed escape hatch into float math, enforced by the unittypes
// analyzer in place of raw float64 casts.
func (bw Bandwidth) BytesPerSec() float64 { return float64(bw) }

// GBps reports the bandwidth in decimal gigabytes per second.
func (bw Bandwidth) GBps() float64 { return float64(bw) / 1e9 }

// MBps reports the bandwidth in decimal megabytes per second.
func (bw Bandwidth) MBps() float64 { return float64(bw) / 1e6 }

// Duration is a span of simulated time in picoseconds. It mirrors sim.Time;
// both are picosecond counts so conversions are free.
type Duration int64

// Duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Picoseconds reports the duration as a floating-point picosecond count —
// the blessed escape hatch into float math for ratios and telemetry,
// enforced by the unittypes analyzer in place of raw float64 casts.
func (d Duration) Picoseconds() float64 { return float64(d) }

// Nanoseconds reports the duration as a floating-point nanosecond count.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds reports the duration as a floating-point microsecond count.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration as a floating-point second count.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with the most natural unit, e.g. "782ns",
// "2.07us".
func (d Duration) String() string {
	neg := ""
	v := d
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= Second:
		return fmt.Sprintf("%s%.4gs", neg, float64(v)/float64(Second))
	case v >= Millisecond:
		return fmt.Sprintf("%s%.4gms", neg, float64(v)/float64(Millisecond))
	case v >= Microsecond:
		return fmt.Sprintf("%s%.4gus", neg, float64(v)/float64(Microsecond))
	case v >= Nanosecond:
		return fmt.Sprintf("%s%.4gns", neg, float64(v)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%s%dps", neg, int64(v))
	}
}

// TimeToSend reports how long a transfer of n bytes takes at rate bw,
// rounded up to the next picosecond. A zero or negative byte count costs
// nothing. TimeToSend panics if bw is not positive: a zero-rate link is a
// configuration error, not a runtime condition.
func TimeToSend(n ByteSize, bw Bandwidth) Duration {
	if n <= 0 {
		return 0
	}
	if bw <= 0 {
		panic(fmt.Sprintf("units: non-positive bandwidth %v", bw))
	}
	// The tiny epsilon absorbs float64 artifacts (4 B at 4 GB/s must be
	// exactly 1000 ps, not ceil(1000.0000000000001) = 1001).
	ps := float64(n) / float64(bw) * 1e12
	return Duration(math.Ceil(ps - 1e-3))
}

// Rate reports the bandwidth achieved by moving n bytes in d simulated time.
// It returns 0 when d is not positive (no time has passed).
func Rate(n ByteSize, d Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(n) / (float64(d) / 1e12))
}
