package units

import (
	"testing"
	"testing/quick"
)

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{1, "1B"},
		{512, "512B"},
		{1024, "1KiB"},
		{4 * KiB, "4KiB"},
		{1536, "1.50KiB"},
		{MiB, "1MiB"},
		{512 * GiB, "512GiB"},
		{TiB, "1TiB"},
		{-4 * KiB, "-4KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{4 * GBPerSec, "4GB/s"},
		{3.66 * GBPerSec, "3.66GB/s"},
		{830 * MBPerSec, "830MB/s"},
		{1.5 * KBPerSec, "1.5KB/s"},
		{12, "12B/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bandwidth(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBandwidthConversions(t *testing.T) {
	bw := 3.5 * GBPerSec
	if bw.GBps() != 3.5 {
		t.Errorf("GBps() = %v, want 3.5", bw.GBps())
	}
	if bw.MBps() != 3500 {
		t.Errorf("MBps() = %v, want 3500", bw.MBps())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{782 * Nanosecond, "782ns"},
		{2070 * Nanosecond, "2.07us"},
		{Millisecond, "1ms"},
		{2 * Second, "2s"},
		{-5 * Microsecond, "-5us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Nanosecond
	if d.Nanoseconds() != 1500 {
		t.Errorf("Nanoseconds() = %v, want 1500", d.Nanoseconds())
	}
	if d.Microseconds() != 1.5 {
		t.Errorf("Microseconds() = %v, want 1.5", d.Microseconds())
	}
	if (2 * Second).Seconds() != 2 {
		t.Errorf("Seconds() = %v, want 2", (2 * Second).Seconds())
	}
}

func TestTimeToSend(t *testing.T) {
	// 4 GB/s moving 4 bytes takes exactly 1 ns.
	if got := TimeToSend(4, 4*GBPerSec); got != Nanosecond {
		t.Errorf("TimeToSend(4B, 4GB/s) = %v, want 1ns", got)
	}
	// A 280-byte wire packet at 4 GB/s takes 70 ns (the paper's per-TLP time).
	if got := TimeToSend(280, 4*GBPerSec); got != 70*Nanosecond {
		t.Errorf("TimeToSend(280B, 4GB/s) = %v, want 70ns", got)
	}
	if got := TimeToSend(0, GBPerSec); got != 0 {
		t.Errorf("TimeToSend(0) = %v, want 0", got)
	}
	if got := TimeToSend(-10, GBPerSec); got != 0 {
		t.Errorf("TimeToSend(-10) = %v, want 0", got)
	}
}

func TestTimeToSendRoundsUp(t *testing.T) {
	// 1 byte at 3 GB/s is 333.33 ps; must round up to 334.
	if got := TimeToSend(1, 3*GBPerSec); got != 334 {
		t.Errorf("TimeToSend(1B, 3GB/s) = %v ps, want 334", int64(got))
	}
}

func TestTimeToSendZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TimeToSend with zero bandwidth did not panic")
		}
	}()
	TimeToSend(100, 0)
}

func TestRate(t *testing.T) {
	// 4096 bytes in 1120 ns is ~3.657 GB/s — the paper's theoretical peak.
	got := Rate(4096, 1120*Nanosecond)
	if got < 3.65*GBPerSec || got > 3.66*GBPerSec {
		t.Errorf("Rate(4096B, 1120ns) = %v, want ~3.657GB/s", got)
	}
	if Rate(100, 0) != 0 {
		t.Errorf("Rate with zero duration should be 0")
	}
	if Rate(100, -5) != 0 {
		t.Errorf("Rate with negative duration should be 0")
	}
}

// Property: Rate(TimeToSend(n, bw)) recovers bw within rounding error.
func TestQuickRateInvertsTimeToSend(t *testing.T) {
	f := func(n uint32, bwMB uint16) bool {
		size := ByteSize(n%(1<<20) + 1)
		bw := Bandwidth(bwMB%4000+1) * MBPerSec
		d := TimeToSend(size, bw)
		got := Rate(size, d)
		// Rounding to whole picoseconds loses at most 1 ps.
		lo := float64(bw) * 0.999
		return float64(got) >= lo && float64(got) <= float64(bw)*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TimeToSend is monotonic in size.
func TestQuickTimeToSendMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := ByteSize(a%(1<<24)), ByteSize(b%(1<<24))
		if x > y {
			x, y = y, x
		}
		return TimeToSend(x, GBPerSec) <= TimeToSend(y, GBPerSec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
