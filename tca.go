// Package tca is a deterministic, software-only reproduction of the
// Tightly Coupled Accelerators (TCA) architecture and its PEACH2 router
// chip (Hanawa, Kodama, Boku, Sato — "Tightly Coupled Accelerators
// Architecture for Minimizing Communication Latency among Accelerators",
// 2013).
//
// The package simulates, at packet granularity, everything the paper's
// evaluation touches: PCI Express Gen2 x8 links with real TLP framing
// overheads, the four-port PEACH2 chip with compare-only routing and a
// chaining DMA controller, GPUDirect-RDMA-style pinned GPU memory, dual-
// socket host nodes with a QPI penalty, ring / dual-ring / loopback
// sub-cluster topologies, and the conventional InfiniBand + MPI three-copy
// baseline. Every table and figure of the paper's §IV regenerates through
// the Experiments registry; see EXPERIMENTS.md for paper-vs-measured.
//
// Quick start:
//
//	cl, err := tca.NewCluster(4)             // a 4-node ring sub-cluster
//	src, _ := cl.AllocGPU(0, 0, 1<<20)       // pin 1 MiB on node0/GPU0
//	dst, _ := cl.AllocGPU(2, 1, 1<<20)       // pin 1 MiB on node2/GPU1
//	cl.MemcpyPeerSync(dst, 0, src, 0, 1<<20) // cudaMemcpyPeer across nodes
package tca

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/sim"
	"tca/internal/tcanet"
)

// Cluster is a running TCA sub-cluster: the nodes, their PEACH2 chips, the
// global address plan, and a communicator — plus the simulation clock that
// stands in for wall time.
type Cluster struct {
	eng  *sim.Engine
	sc   *tcanet.SubCluster
	comm *core.Comm
}

// Option configures NewCluster.
type Option func(*config)

type config struct {
	params   tcanet.Params
	dualRing bool
	mode     core.DMAMode
}

// WithDualRing builds two rings of n/2 nodes coupled by Port S instead of
// one n-node ring (n must be even and ≥4).
func WithDualRing() Option { return func(c *config) { c.dualRing = true } }

// WithDMAMode selects the DMA controller generation: TwoPhase (the paper's
// current chip) or Pipelined (its announced successor).
func WithDMAMode(m DMAMode) Option { return func(c *config) { c.mode = m } }

// WithParams replaces the whole hardware parameter set; the default
// reproduces the paper's test environment.
func WithParams(p Params) Option { return func(c *config) { c.params = p } }

// NewCluster builds an n-node sub-cluster (2–16 nodes; the paper's basic
// unit is 8–16) with shortest-arc ring routing programmed into every chip.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	cfg := config{params: tcanet.DefaultParams, mode: core.Pipelined}
	for _, o := range opts {
		o(&cfg)
	}
	eng := sim.NewEngine()
	var sc *tcanet.SubCluster
	var err error
	if cfg.dualRing {
		if n%2 != 0 {
			return nil, fmt.Errorf("tca: dual ring needs an even node count, got %d", n)
		}
		sc, err = tcanet.BuildDualRing(eng, n/2, cfg.params)
	} else {
		sc, err = tcanet.BuildRing(eng, n, cfg.params)
	}
	if err != nil {
		return nil, err
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		return nil, err
	}
	comm.SetMode(cfg.mode)
	return &Cluster{eng: eng, sc: sc, comm: comm}, nil
}

// Nodes reports the sub-cluster size.
func (c *Cluster) Nodes() int { return c.sc.Nodes() }

// Now reports the simulated time since construction.
func (c *Cluster) Now() Duration { return c.eng.Now().Elapsed() }

// Run drains all pending simulated work and returns the clock.
func (c *Cluster) Run() Duration {
	c.eng.Run()
	return c.Now()
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d Duration) { c.eng.RunFor(d) }

// Comm exposes the full communicator API for advanced use (descriptor
// chains, block-stride, flags).
func (c *Cluster) Comm() *Comm { return c.comm }

// SubCluster exposes the underlying fabric: nodes, chips, address plan.
func (c *Cluster) SubCluster() *SubCluster { return c.sc }

// AllocGPU allocates and GPUDirect-pins n bytes on (node, gpu); gpu must be
// 0 or 1, the two the PEACH2 board shares a socket with.
func (c *Cluster) AllocGPU(node, gpu int, n ByteSize) (GPUBuffer, error) {
	return c.comm.RegisterGPUBuffer(node, gpu, n)
}

// AllocHost allocates n bytes of DMA-capable host memory on node.
func (c *Cluster) AllocHost(node int, n ByteSize) (HostBuffer, error) {
	return c.comm.AllocHostBuffer(node, n)
}

// MemcpyPeer starts the cross-node cudaMemcpyPeer extension (§III-H); done
// fires at completion. Use MemcpyPeerSync to block the simulation on it.
func (c *Cluster) MemcpyPeer(dst GPUBuffer, dstOff ByteSize, src GPUBuffer, srcOff ByteSize, n ByteSize, done func(at Duration)) error {
	return c.comm.MemcpyPeer(dst, dstOff, src, srcOff, n, wrap(done))
}

// MemcpyPeerSync runs MemcpyPeer to completion and returns the transfer's
// simulated duration.
func (c *Cluster) MemcpyPeerSync(dst GPUBuffer, dstOff ByteSize, src GPUBuffer, srcOff ByteSize, n ByteSize) (Duration, error) {
	start := c.eng.Now()
	var end sim.Time
	if err := c.comm.MemcpyPeer(dst, dstOff, src, srcOff, n, func(now sim.Time) { end = now }); err != nil {
		return 0, err
	}
	c.eng.Run()
	if end == 0 {
		return 0, fmt.Errorf("tca: MemcpyPeer never completed")
	}
	return end.Sub(start), nil
}

// PIOPut stores data from node's CPU into any global TCA address — the
// lowest-latency path for short messages (§III-F1).
func (c *Cluster) PIOPut(node int, dst Addr, data []byte) error {
	return c.comm.PIOPut(node, dst, data)
}

// GlobalGPU translates (buffer, offset) to the sub-cluster-wide address
// other nodes write to.
func (c *Cluster) GlobalGPU(b GPUBuffer, off ByteSize) (Addr, error) {
	return c.comm.GlobalGPU(b, off)
}

// GlobalHost translates (buffer, offset) to the sub-cluster-wide address.
func (c *Cluster) GlobalHost(b HostBuffer, off ByteSize) (Addr, error) {
	return c.comm.GlobalHost(b, off)
}

// WriteGPU / ReadGPU / WriteHost / ReadHost move data between the test
// harness and simulated memories without charging simulated time.

// WriteGPU initializes GPU buffer contents.
func (c *Cluster) WriteGPU(b GPUBuffer, off ByteSize, data []byte) error {
	return c.comm.WriteGPU(b, off, data)
}

// ReadGPU reads GPU buffer contents.
func (c *Cluster) ReadGPU(b GPUBuffer, off, n ByteSize) ([]byte, error) {
	return c.comm.ReadGPU(b, off, n)
}

// WriteHost initializes host buffer contents.
func (c *Cluster) WriteHost(b HostBuffer, off ByteSize, data []byte) error {
	return c.comm.WriteHost(b, off, data)
}

// ReadHost reads host buffer contents.
func (c *Cluster) ReadHost(b HostBuffer, off, n ByteSize) ([]byte, error) {
	return c.comm.ReadHost(b, off, n)
}

// WriteFlag writes an 8-byte flag value from node's CPU to a global
// address — the notify half of TCA flag synchronization.
func (c *Cluster) WriteFlag(node int, dst Addr, value uint64) error {
	return c.comm.WriteFlag(node, dst, value)
}

// WaitFlag runs fn when the fabric writes into (buffer, offset) on the
// buffer's node — the wait half (a CPU polling loop, like §IV-B1 step 6).
func (c *Cluster) WaitFlag(b HostBuffer, off ByteSize, fn func(at Duration)) {
	c.comm.WaitFlag(b.Node, b.Bus+Addr(off), wrap(fn))
}

// PutToHost copies n bytes from a local bus address on srcNode into a
// (possibly remote) host buffer via the source node's DMA controller.
func (c *Cluster) PutToHost(dst HostBuffer, dstOff ByteSize, srcNode int, srcBus Addr, n ByteSize, done func(at Duration)) error {
	return c.comm.PutToHost(dst, dstOff, srcNode, srcBus, n, wrap(done))
}

// PutBlockStride moves a strided region (Count blocks of BlockLen, source
// advancing SrcStride, destination DstStride) from a local bus address on
// srcNode to a global destination as one chained-DMA issue (§III-F2).
func (c *Cluster) PutBlockStride(srcNode int, srcBus Addr, dstGlobal Addr, bs BlockStride, done func(at Duration)) error {
	return c.comm.PutBlockStride(srcNode, srcBus, dstGlobal, bs, wrap(done))
}

func wrap(done func(at Duration)) func(sim.Time) {
	if done == nil {
		return nil
	}
	return func(now sim.Time) { done(now.Elapsed()) }
}
