package tca

import (
	"bytes"
	"testing"
)

func TestNewClusterRing(t *testing.T) {
	cl, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Nodes() != 4 {
		t.Fatalf("Nodes() = %d", cl.Nodes())
	}
	if cl.Now() != 0 {
		t.Fatalf("clock started at %v", cl.Now())
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(1); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := NewCluster(17); err == nil {
		t.Fatal("17-node cluster accepted")
	}
	if _, err := NewCluster(5, WithDualRing()); err == nil {
		t.Fatal("odd dual ring accepted")
	}
	if _, err := NewCluster(8, WithDualRing()); err != nil {
		t.Fatalf("8-node dual ring rejected: %v", err)
	}
}

func TestMemcpyPeerSyncRoundTrip(t *testing.T) {
	cl, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cl.AllocGPU(0, 0, 64*KiB)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := cl.AllocGPU(2, 1, 64*KiB)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 32*KiB)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := cl.WriteGPU(src, 0, want); err != nil {
		t.Fatal(err)
	}
	d, err := cl.MemcpyPeerSync(dst, 0, src, 0, 32*KiB)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("transfer took %v", d)
	}
	got, err := cl.ReadGPU(dst, 0, 32*KiB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cross-node copy corrupted data")
	}
}

func TestDMAModeOption(t *testing.T) {
	two, err := NewCluster(2, WithDMAMode(TwoPhase))
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewCluster(2, WithDMAMode(Pipelined))
	if err != nil {
		t.Fatal(err)
	}
	run := func(cl *Cluster) Duration {
		src, _ := cl.AllocGPU(0, 0, 64*KiB)
		dst, _ := cl.AllocGPU(1, 0, 64*KiB)
		if err := cl.WriteGPU(src, 0, make([]byte, 64*KiB)); err != nil {
			t.Fatal(err)
		}
		d, err := cl.MemcpyPeerSync(dst, 0, src, 0, 64*KiB)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dTwo, dPipe := run(two), run(pipe)
	if dPipe >= dTwo {
		t.Fatalf("pipelined (%v) not faster than two-phase (%v)", dPipe, dTwo)
	}
}

func TestPIOPutAcrossCluster(t *testing.T) {
	cl, err := NewCluster(8)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := cl.AllocHost(5, 4*KiB)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := cl.GlobalHost(buf, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.PIOPut(0, dst, []byte{0xCA, 0xFE}); err != nil {
		t.Fatal(err)
	}
	cl.Run()
	got, _ := cl.ReadHost(buf, 0x100, 2)
	if got[0] != 0xCA || got[1] != 0xFE {
		t.Fatal("PIO put did not land on node 5")
	}
}

func TestDualRingTransfer(t *testing.T) {
	cl, err := NewCluster(8, WithDualRing())
	if err != nil {
		t.Fatal(err)
	}
	src, _ := cl.AllocGPU(1, 0, 4*KiB)
	dst, _ := cl.AllocGPU(6, 0, 4*KiB) // other ring: must cross Port S
	want := []byte("across the S port")
	if err := cl.WriteGPU(src, 0, want); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MemcpyPeerSync(dst, 0, src, 0, ByteSize(len(want))); err != nil {
		t.Fatal(err)
	}
	got, _ := cl.ReadGPU(dst, 0, ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("dual-ring copy corrupted data")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(Experiments()) < 14 {
		t.Fatalf("only %d experiments exposed", len(Experiments()))
	}
	e, ok := FindExperiment("fig9")
	if !ok {
		t.Fatal("Fig9 not found")
	}
	tab := e.Run(DefaultParams())
	if len(tab.Rows) == 0 {
		t.Fatal("Fig9 produced no rows")
	}
	if e.Check != nil {
		if err := e.Check(tab); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	cl, _ := NewCluster(2)
	cl.RunFor(5 * Microsecond)
	if cl.Now() != 5*Microsecond {
		t.Fatalf("Now() = %v after RunFor(5us)", cl.Now())
	}
}

func TestFacadeBlockStride(t *testing.T) {
	cl, err := NewCluster(2, WithDMAMode(Pipelined))
	if err != nil {
		t.Fatal(err)
	}
	src, _ := cl.AllocHost(0, 64*KiB)
	dst, _ := cl.AllocHost(1, 64*KiB)
	want := make([]byte, 512)
	for i := range want {
		want[i] = byte(i * 9)
	}
	for i := 0; i < 4; i++ {
		if err := cl.WriteHost(src, ByteSize(i)*4096, want); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := cl.GlobalHost(dst, 0)
	done := false
	err = cl.PutBlockStride(0, src.Bus, g, BlockStride{
		BlockLen: 512, Count: 4, SrcStride: 4096, DstStride: 512,
	}, func(Duration) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	cl.Run()
	if !done {
		t.Fatal("block-stride never completed")
	}
	for i := 0; i < 4; i++ {
		got, _ := cl.ReadHost(dst, ByteSize(i)*512, 512)
		if !bytes.Equal(got, want) {
			t.Fatalf("gathered block %d corrupted", i)
		}
	}
}

func TestFacadeFlags(t *testing.T) {
	cl, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := cl.AllocHost(1, 4*KiB)
	g, _ := cl.GlobalHost(buf, 64)
	var seenAt Duration
	cl.WaitFlag(buf, 64, func(at Duration) { seenAt = at })
	if err := cl.WriteFlag(0, g, 77); err != nil {
		t.Fatal(err)
	}
	cl.Run()
	if seenAt == 0 {
		t.Fatal("flag never observed")
	}
	raw, _ := cl.ReadHost(buf, 64, 8)
	if raw[0] != 77 {
		t.Fatalf("flag value = %d", raw[0])
	}
}

func TestFacadeWithParams(t *testing.T) {
	p := DefaultParams()
	p.CableProp = 500 * Nanosecond
	slow, err := NewCluster(2, WithParams(p))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(cl *Cluster) Duration {
		buf, _ := cl.AllocHost(1, 4*KiB)
		g, _ := cl.GlobalHost(buf, 0)
		var at Duration
		cl.WaitFlag(buf, 0, func(a Duration) { at = a })
		if err := cl.PIOPut(0, g, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatal(err)
		}
		cl.Run()
		return at
	}
	if measure(slow) <= measure(fast) {
		t.Fatal("longer cable did not increase PIO latency — WithParams ignored")
	}
}
